//! First-class estimands: the [`Objective`] type.
//!
//! The paper measures several quantities on the same (process × graph)
//! pair — cover time (Thms 1.1–1.3), partial-infection growth
//! (Thm 1.4), the COBRA/BIPS duality identity, and full reached-set
//! trajectories. Before this type each estimand was a bespoke entry
//! point; an [`Objective`] makes the estimand itself a parseable,
//! sweepable *value*:
//!
//! ```text
//! cover                 rounds until every vertex is reached
//! hit:V | hit:far       rounds until vertex V (or the BFS-farthest
//!                       vertex from the start set) is reached
//! infection:T           rounds until ⌈T·n⌉ vertices are reached, 0<T≤1
//! duality:h{T1,T2,...}  two-sided Thm 1.3 check at the given horizons
//! trajectory            reached-set size after every round, to the cap
//! ```
//!
//! [`FromStr`]/[`Display`](fmt::Display) round-trip exactly, like `GraphSpec` and
//! `ProcessSpec`, so an objective can live on a command line, in a
//! sweep axis (`objective={cover,hit:far,infection:0.5}`), or in a
//! result-store content key.
//!
//! Each variant bundles the three things an estimand needs:
//!
//! * its **stop condition** — [`Objective::stop_when`] resolves the
//!   variant (plus the concrete graph and start set) to a
//!   [`StopWhen`];
//! * its **observer** — the stopping objectives reduce each trial to a
//!   bare [`TrialOutcome`]; `trajectory` and `duality` need per-round
//!   probes, which the `cobra` crate's `SimSpec::measure` wires up;
//! * its **streaming reducer** — [`StoppingAccumulator`] folds trial
//!   outcomes through Welford moments and P² quantile markers
//!   ([`cobra_stats::streaming`]) in O(1) memory, so a sweep point
//!   never materializes a sample vector.

use crate::engine::{StopWhen, TrialOutcome};
use cobra_graph::{props, Topology, VertexId};
use cobra_stats::streaming::StreamingSummary;
use std::fmt;
use std::str::FromStr;

/// The canonical spellings, quoted by every parse error.
pub const OBJECTIVE_USAGES: &[&str] = &[
    "cover",
    "hit:V",
    "hit:far",
    "infection:T  (0 < T <= 1)",
    "duality:h{T1,T2,...}",
    "trajectory",
];

/// The target of a hitting-time objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitTarget {
    /// A concrete vertex id.
    Vertex(VertexId),
    /// The vertex farthest (BFS hops) from the start set, lowest id on
    /// ties — resolved per graph, so one spelling sweeps across sizes.
    Far,
}

/// What a batch of trials estimates.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// Rounds until every vertex is reached: cover time for COBRA and
    /// walks, full-infection time for BIPS, broadcast time for gossip.
    Cover,
    /// Rounds until one target vertex is reached: hitting time.
    Hit(HitTarget),
    /// Rounds until a `threshold` fraction of the vertices is reached
    /// (first passage of `|A_t| ≥ ⌈threshold·n⌉`); `infection:1` is
    /// exactly `cover`.
    Infection {
        /// Fraction of `n` to reach, in `(0, 1]`.
        threshold: f64,
    },
    /// The two-sided Theorem 1.3 duality check at fixed horizons
    /// (nondecreasing, nonempty).
    Duality {
        /// Horizons `T` to compare at.
        horizons: Vec<usize>,
    },
    /// Mean reached-set-size trajectory over the full round budget.
    Trajectory,
}

impl Objective {
    /// Convenience constructor for `hit:V`.
    pub fn hit(v: VertexId) -> Objective {
        Objective::Hit(HitTarget::Vertex(v))
    }

    /// True for the objectives that can only terminate when every part
    /// of the graph is reachable from the start set: `cover` must touch
    /// all `n` vertices and `hit:far` resolves its target by a BFS that
    /// must reach everything. Loaded real-world graphs are routinely
    /// disconnected, so spec resolution checks these up front and points
    /// at `?component=giant` instead of censoring every trial.
    pub fn requires_full_reach(&self) -> bool {
        matches!(self, Objective::Cover | Objective::Hit(HitTarget::Far))
    }

    /// True for the stopping-time objectives a sweep grid can carry
    /// (`cover`, `hit:*`, `infection:*`) — the ones whose result is one
    /// streamed stopping-time summary per point.
    pub fn is_sweepable(&self) -> bool {
        matches!(
            self,
            Objective::Cover | Objective::Hit(_) | Objective::Infection { .. }
        )
    }

    /// Checks the objective against a concrete graph and start set
    /// (any [`Topology`] backend); errors name the offending token and
    /// say why the estimand cannot terminate.
    pub fn validate<T: Topology>(&self, g: &T, start: &[VertexId]) -> Result<(), String> {
        match self {
            Objective::Cover | Objective::Trajectory => Ok(()),
            Objective::Hit(target) => self.resolve_hit(g, start, *target).map(|_| ()),
            Objective::Infection { threshold } => {
                if *threshold > 0.0 && *threshold <= 1.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "objective \"infection:{threshold}\" needs a threshold in (0, 1]"
                    ))
                }
            }
            Objective::Duality { horizons } => validate_horizons(horizons),
        }
    }

    /// The engine stop condition this objective denotes on `g` from
    /// `start` (resolving `hit:far` and infection thresholds against
    /// the concrete graph).
    pub fn stop_when<T: Topology>(&self, g: &T, start: &[VertexId]) -> Result<StopWhen, String> {
        match self {
            Objective::Cover => Ok(StopWhen::Complete),
            Objective::Hit(target) => Ok(StopWhen::Reached(self.resolve_hit(g, start, *target)?)),
            Objective::Infection { threshold } => {
                self.validate(g, start)?;
                let k = (threshold * g.n() as f64).ceil() as usize;
                if k >= g.n() {
                    // `infection:1` *is* cover — use the same stop
                    // condition so the two are bit-identical.
                    Ok(StopWhen::Complete)
                } else {
                    Ok(StopWhen::ReachedCount(k.max(1)))
                }
            }
            // Fixed-horizon estimands: only the cap stops a trial.
            Objective::Duality { horizons } => {
                validate_horizons(horizons)?;
                Ok(StopWhen::AtCap)
            }
            Objective::Trajectory => Ok(StopWhen::AtCap),
        }
    }

    /// The concrete hitting target (`hit:far` resolves to the
    /// BFS-farthest vertex from the start set, lowest id on ties).
    pub fn resolve_hit<T: Topology>(
        &self,
        g: &T,
        start: &[VertexId],
        target: HitTarget,
    ) -> Result<VertexId, String> {
        match target {
            HitTarget::Vertex(v) => {
                if (v as usize) < g.n() {
                    Ok(v)
                } else {
                    Err(format!(
                        "objective \"hit:{v}\" names a vertex outside the graph \
                         (n = {}); the hitting time cannot terminate",
                        g.n()
                    ))
                }
            }
            HitTarget::Far => match props::farthest_vertex(g, start) {
                Ok((v, _)) => Ok(v),
                Err(unreachable) => Err(format!(
                    "objective \"hit:far\" cannot terminate: vertex {unreachable} is \
                     unreachable from the start set"
                )),
            },
        }
    }
}

fn validate_horizons(horizons: &[usize]) -> Result<(), String> {
    if horizons.is_empty() {
        return Err("objective \"duality:h{}\" needs at least one horizon".into());
    }
    if horizons.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!(
            "objective \"duality:h{{{}}}\" needs nondecreasing horizons",
            join(horizons)
        ));
    }
    Ok(())
}

fn join(horizons: &[usize]) -> String {
    horizons
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::Cover => write!(f, "cover"),
            Objective::Hit(HitTarget::Vertex(v)) => write!(f, "hit:{v}"),
            Objective::Hit(HitTarget::Far) => write!(f, "hit:far"),
            Objective::Infection { threshold } => write!(f, "infection:{threshold}"),
            Objective::Duality { horizons } => write!(f, "duality:h{{{}}}", join(horizons)),
            Objective::Trajectory => write!(f, "trajectory"),
        }
    }
}

impl FromStr for Objective {
    type Err = String;

    fn from_str(s: &str) -> Result<Objective, String> {
        let s = s.trim();
        if s.eq_ignore_ascii_case("cover") {
            return Ok(Objective::Cover);
        }
        if s.eq_ignore_ascii_case("trajectory") {
            return Ok(Objective::Trajectory);
        }
        if let Some(rest) = s.strip_prefix("hit:") {
            if rest.eq_ignore_ascii_case("far") {
                return Ok(Objective::Hit(HitTarget::Far));
            }
            return rest
                .parse()
                .map(Objective::hit)
                .map_err(|_| format!("bad hit target {rest:?} (usage: hit:V or hit:far)"));
        }
        if let Some(rest) = s.strip_prefix("infection:") {
            let threshold: f64 = rest.parse().map_err(|_| {
                format!("bad infection threshold {rest:?} (usage: infection:T, 0 < T <= 1)")
            })?;
            if !(threshold > 0.0 && threshold <= 1.0) {
                return Err(format!(
                    "infection threshold {rest:?} out of range (usage: infection:T, 0 < T <= 1)"
                ));
            }
            return Ok(Objective::Infection { threshold });
        }
        if let Some(rest) = s.strip_prefix("duality:h{") {
            let Some(body) = rest.strip_suffix('}') else {
                return Err(format!(
                    "unclosed horizon list in {s:?} (usage: duality:h{{T1,T2,...}})"
                ));
            };
            let horizons = body
                .split(',')
                .map(|t| {
                    t.trim().parse::<usize>().map_err(|_| {
                        format!("bad horizon {t:?} in {s:?} (usage: duality:h{{T1,T2,...}})")
                    })
                })
                .collect::<Result<Vec<usize>, String>>()?;
            validate_horizons(&horizons)?;
            return Ok(Objective::Duality { horizons });
        }
        Err(format!(
            "unknown objective {s:?} (valid objectives: {})",
            OBJECTIVE_USAGES.join(", ")
        ))
    }
}

/// Streaming reducer for the stopping-time objectives: folds each
/// [`TrialOutcome`] as it finishes — Welford moments and P² quartiles
/// over the completed stopping times, censoring and resource tallies on
/// the side — in O(1) memory, independent of the trial count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoppingAccumulator {
    summary: StreamingSummary,
    trials: usize,
    censored: usize,
    transmissions: u64,
    reached: u64,
}

impl StoppingAccumulator {
    /// An empty reducer.
    pub fn new() -> StoppingAccumulator {
        StoppingAccumulator::default()
    }

    /// Folds one finished trial.
    pub fn push(&mut self, outcome: &TrialOutcome) {
        self.trials += 1;
        match outcome.rounds {
            Some(r) => self.summary.push(r as f64),
            None => self.censored += 1,
        }
        self.transmissions += outcome.transmissions;
        self.reached += outcome.reached as u64;
    }

    /// Trials folded so far.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Total transmissions across folded trials.
    pub fn total_transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Total reached-set size at trial end, summed over folded trials.
    pub fn total_reached(&self) -> u64 {
        self.reached
    }

    /// Closes the fold under the cap that produced the outcomes.
    pub fn finish(self, cap: usize) -> StoppingEstimate {
        let trials = self.trials.max(1) as f64;
        StoppingEstimate::from_fold(
            &self.summary,
            self.trials,
            self.censored,
            cap,
            self.transmissions as f64 / trials,
            self.reached as f64 / trials,
        )
    }
}

/// The streamed result of a batch of stopping-time trials: everything
/// the sample-vector `Estimate` could report, without the samples.
///
/// All statistics cover the *completed* trials
/// (`trials - censored`); the fields are zero when every trial was
/// censored (and [`StoppingEstimate::summary`] panics, mirroring the
/// sample-vector path).
#[derive(Debug, Clone, PartialEq)]
pub struct StoppingEstimate {
    /// Trials folded (completed + censored).
    pub trials: usize,
    /// Trials that hit the cap without meeting the objective.
    pub censored: usize,
    /// The round cap that was in force.
    pub cap: usize,
    /// Mean stopping time (Welford).
    pub mean: f64,
    /// Sample standard deviation of the stopping time.
    pub std_dev: f64,
    /// Smallest observed stopping time.
    pub min: f64,
    /// Largest observed stopping time.
    pub max: f64,
    /// First-quartile estimate (P², exact under five samples).
    pub q25: f64,
    /// Median estimate (P², exact under five samples).
    pub median: f64,
    /// Third-quartile estimate (P², exact under five samples).
    pub q75: f64,
    /// Mean transmissions per trial (censored included).
    pub mean_transmissions: f64,
    /// Mean reached-set size at trial end (censored included).
    pub mean_reached: f64,
}

impl StoppingEstimate {
    /// Closes a streamed fold over completed stopping times into an
    /// estimate — the single place the censored-fold zero sentinels
    /// and the quartile unpacking live ([`StoppingAccumulator::finish`]
    /// and the sample-vector bridge both build through here).
    pub fn from_fold(
        summary: &StreamingSummary,
        trials: usize,
        censored: usize,
        cap: usize,
        mean_transmissions: f64,
        mean_reached: f64,
    ) -> StoppingEstimate {
        let (mean, std_dev, min, max, q25, median, q75) = if summary.count() == 0 {
            // Zero sentinels keep the estimate (and the records built
            // from it) comparable with `==`; `summary()` still panics,
            // like the sample-vector path.
            (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        } else {
            let s = summary.to_summary();
            (s.mean, s.std_dev, s.min, s.max, s.q25, s.median, s.q75)
        };
        StoppingEstimate {
            trials,
            censored,
            cap,
            mean,
            std_dev,
            min,
            max,
            q25,
            median,
            q75,
            mean_transmissions,
            mean_reached,
        }
    }

    /// Trials that met the objective.
    pub fn completed(&self) -> usize {
        self.trials - self.censored
    }

    /// Fraction of trials that met the objective.
    pub fn completion_rate(&self) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.completed() as f64 / self.trials as f64
    }

    /// The completed-trial statistics as a [`cobra_stats::Summary`].
    /// Panics if every trial was censored, like the sample-vector path.
    pub fn summary(&self) -> cobra_stats::Summary {
        assert!(
            self.completed() > 0,
            "all {} trials censored at cap {}",
            self.censored,
            self.cap
        );
        cobra_stats::Summary {
            count: self.completed(),
            mean: self.mean,
            std_dev: self.std_dev,
            min: self.min,
            q25: self.q25,
            median: self.median,
            q75: self.q75,
            max: self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;

    #[test]
    fn canonical_objectives_round_trip() {
        for s in [
            "cover",
            "hit:7",
            "hit:far",
            "infection:0.5",
            "infection:1",
            "duality:h{8,16,32}",
            "duality:h{4}",
            "trajectory",
        ] {
            let o: Objective = s.parse().unwrap_or_else(|e| panic!("{s}: {e}"));
            assert_eq!(o.to_string(), s, "display not canonical for {s}");
            assert_eq!(
                o.to_string().parse::<Objective>().unwrap(),
                o,
                "parse∘display not identity for {s}"
            );
        }
    }

    #[test]
    fn near_miss_spellings_are_rejected_with_usage() {
        for (s, needle) in [
            ("", "valid objectives"),
            ("fly", "valid objectives"),
            ("hit", "valid objectives"),
            ("hit:", "hit:V or hit:far"),
            ("hit:x", "hit:V or hit:far"),
            ("infection:", "infection:T"),
            ("infection:0", "0 < T <= 1"),
            ("infection:1.5", "0 < T <= 1"),
            ("infection:-0.5", "0 < T <= 1"),
            ("duality:h{8,16", "unclosed"),
            ("duality:h{}", "horizon"),
            ("duality:h{8,x}", "bad horizon"),
            ("duality:h{9,3}", "nondecreasing"),
            ("cover:5", "valid objectives"),
        ] {
            let err = s.parse::<Objective>().expect_err(s);
            assert!(err.contains(needle), "{s:?}: {err:?} missing {needle:?}");
        }
    }

    #[test]
    fn stop_conditions_resolve_against_the_graph() {
        let g = generators::path(8);
        let start = [0u32];
        assert_eq!(
            Objective::Cover.stop_when(&g, &start),
            Ok(StopWhen::Complete)
        );
        assert_eq!(
            Objective::hit(5).stop_when(&g, &start),
            Ok(StopWhen::Reached(5))
        );
        assert_eq!(
            Objective::Hit(HitTarget::Far).stop_when(&g, &start),
            Ok(StopWhen::Reached(7))
        );
        assert_eq!(
            Objective::Infection { threshold: 0.5 }.stop_when(&g, &start),
            Ok(StopWhen::ReachedCount(4))
        );
        // infection:1 is cover, bit for bit.
        assert_eq!(
            Objective::Infection { threshold: 1.0 }.stop_when(&g, &start),
            Ok(StopWhen::Complete)
        );
        assert_eq!(
            "duality:h{2,4}"
                .parse::<Objective>()
                .unwrap()
                .stop_when(&g, &start),
            Ok(StopWhen::AtCap)
        );
        assert_eq!(
            Objective::Trajectory.stop_when(&g, &start),
            Ok(StopWhen::AtCap)
        );
    }

    #[test]
    fn nonterminating_combos_are_named() {
        let g = generators::path(8);
        let err = Objective::hit(99).stop_when(&g, &[0]).unwrap_err();
        assert!(
            err.contains("hit:99") && err.contains("cannot terminate"),
            "{err}"
        );
        let two = cobra_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let err = Objective::Hit(HitTarget::Far)
            .stop_when(&two, &[0])
            .unwrap_err();
        assert!(
            err.contains("hit:far") && err.contains("unreachable"),
            "{err}"
        );
    }

    #[test]
    fn full_reach_partition() {
        assert!(Objective::Cover.requires_full_reach());
        assert!(Objective::Hit(HitTarget::Far).requires_full_reach());
        assert!(!Objective::hit(3).requires_full_reach());
        assert!(!Objective::Infection { threshold: 0.5 }.requires_full_reach());
        assert!(!Objective::Trajectory.requires_full_reach());
        assert!(!"duality:h{4}"
            .parse::<Objective>()
            .unwrap()
            .requires_full_reach());
    }

    #[test]
    fn sweepability_partition() {
        assert!(Objective::Cover.is_sweepable());
        assert!(Objective::Hit(HitTarget::Far).is_sweepable());
        assert!(Objective::Infection { threshold: 0.5 }.is_sweepable());
        assert!(!Objective::Trajectory.is_sweepable());
        assert!(!"duality:h{4}".parse::<Objective>().unwrap().is_sweepable());
    }

    #[test]
    fn accumulator_matches_sample_vector_statistics() {
        let outcomes: Vec<TrialOutcome> = [7usize, 3, 9, 5, 11, 4, 6]
            .iter()
            .map(|&r| TrialOutcome {
                rounds: Some(r),
                executed: r,
                reached: 10,
                transmissions: 2 * r as u64,
            })
            .collect();
        let mut acc = StoppingAccumulator::new();
        for o in &outcomes {
            acc.push(o);
        }
        assert_eq!(acc.trials(), 7);
        let est = acc.finish(1000);
        assert_eq!(est.completed(), 7);
        assert_eq!(est.censored, 0);
        assert_eq!(est.min, 3.0);
        assert_eq!(est.max, 11.0);
        let samples: Vec<f64> = outcomes.iter().map(|o| o.rounds.unwrap() as f64).collect();
        let exact = cobra_stats::Summary::from_samples(&samples);
        assert_eq!(est.mean, exact.mean);
        assert!((est.std_dev - exact.std_dev).abs() < 1e-12);
        assert_eq!(est.mean_reached, 10.0);
        assert_eq!(
            est.mean_transmissions,
            samples.iter().sum::<f64>() * 2.0 / 7.0
        );
    }

    #[test]
    fn accumulator_censoring_and_empty_fold() {
        let mut acc = StoppingAccumulator::new();
        acc.push(&TrialOutcome {
            rounds: None,
            executed: 50,
            reached: 3,
            transmissions: 100,
        });
        let est = acc.finish(50);
        assert_eq!((est.trials, est.censored, est.completed()), (1, 1, 0));
        assert_eq!(est.completion_rate(), 0.0);
        assert_eq!(est.mean, 0.0, "zero sentinel, not NaN");
        let empty = StoppingAccumulator::new().finish(10);
        assert_eq!(empty.trials, 0);
        assert_eq!(empty.completion_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "censored")]
    fn summary_of_all_censored_panics() {
        let mut acc = StoppingAccumulator::new();
        acc.push(&TrialOutcome {
            rounds: None,
            executed: 5,
            reached: 1,
            transmissions: 0,
        });
        acc.finish(5).summary();
    }
}
