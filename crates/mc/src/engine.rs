//! The unified Monte-Carlo engine: one trial loop for every process.
//!
//! Before this engine existed, cover-time, infection-time, and duality
//! estimation each owned a hand-rolled loop over [`run_trials`] with its
//! own seeding, stepping, stop condition, and censoring bookkeeping.
//! [`Engine::run`] centralises all of that:
//!
//! * trials, master seed, and thread count live in the engine;
//! * the per-trial round cap and the [`StopWhen`] condition decide when
//!   a trial ends (completion, reaching a target vertex, or only at the
//!   cap — the horizon-scan mode duality checks use);
//! * an [`Observer`] sees the process after every round and distils each
//!   trial into whatever output the estimator needs: nothing but the
//!   outcome ([`Completion`]), a reached-count trajectory
//!   ([`Trajectory`]), or any custom per-round probe.
//!
//! # Zero-allocation trial loop
//!
//! The trial loop is generic over `P:`[`ProcessState`], so stepping and
//! stop checks monomorphize (no virtual dispatch per round). Each worker
//! thread builds **one** process state and **one** [`StepCtx`] via
//! [`run_trials_with`]; every trial reseeds the context and
//! [`ProcessState::reset`]s the state, so steady-state trials perform no
//! heap allocation at all. The string-spec path still works — a
//! [`cobra_process::BoxedProcess`] is itself a `ProcessState` — and even
//! there the `Box` is built once per worker, not once per trial.
//!
//! Determinism is inherited from [`run_trials`]: trial `i` sees only
//! `trial_seed(master_seed, i)`, so results are identical across thread
//! counts.
//!
//! [`run_trials`]: crate::runner::run_trials

use crate::runner::{run_trials_with, RunConfig};
use cobra_graph::{Topology, VertexId};
use cobra_obs::{NoProbe, Probe, RoundRecord, TrialTotals};
use cobra_process::{BoxedProcess, ProcessSpec, ProcessState, ProcessView, StepCtx};

/// When a trial stops stepping (the round cap always applies on top).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopWhen {
    /// Every vertex reached — cover time, full-infection time,
    /// broadcast time.
    Complete,
    /// A specific vertex reached — hitting time.
    Reached(VertexId),
    /// At least this many vertices reached — partial-infection
    /// (threshold) first-passage times.
    ReachedCount(usize),
    /// Only the cap stops the trial — fixed-horizon scans.
    AtCap,
}

/// What happened in one trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialOutcome {
    /// Rounds until the stop condition held, or `None` if the trial was
    /// censored at the cap (for [`StopWhen::AtCap`] this is always
    /// `None`: there is nothing to complete).
    pub rounds: Option<usize>,
    /// Rounds actually executed (equals the cap when censored).
    pub executed: usize,
    /// Vertices reached when the trial ended.
    pub reached: usize,
    /// Total transmissions sent.
    pub transmissions: u64,
}

/// Per-trial hooks: sees the process after construction and after every
/// round, then distils the trial into its output.
///
/// Hooks read through the object-safe [`ProcessView`] surface, so one
/// observer type serves every process the (monomorphized) trial loop
/// drives.
pub trait Observer {
    type Output: Send;

    /// Called once, before the first round (the process is in its
    /// round-0 state).
    fn on_start(&mut self, _process: &dyn ProcessView) {}

    /// Called after every executed round.
    fn on_round(&mut self, _process: &dyn ProcessView) {}

    /// Called once when the trial ends.
    fn finish(self, outcome: TrialOutcome, process: &dyn ProcessView) -> Self::Output;
}

/// The no-op observer: a trial reduces to its [`TrialOutcome`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Completion;

impl Observer for Completion {
    type Output = TrialOutcome;
    fn finish(self, outcome: TrialOutcome, _process: &dyn ProcessView) -> TrialOutcome {
        outcome
    }
}

/// Records the reached-set size after every round (index 0 is the
/// round-0 state) — the observer behind infection/cover trajectories.
#[derive(Debug, Clone, Default)]
pub struct Trajectory {
    sizes: Vec<usize>,
    /// Expected round count; `on_start` pre-reserves `cap + 1` entries
    /// so long-horizon trials never re-grow the vec mid-trial.
    cap: usize,
}

impl Trajectory {
    /// A trajectory observer sized for a `cap`-round trial (`cap + 1`
    /// entries: the round-0 state plus one per executed round).
    pub fn with_capacity(cap: usize) -> Trajectory {
        Trajectory {
            sizes: Vec::new(),
            cap,
        }
    }
}

impl Observer for Trajectory {
    type Output = Vec<usize>;
    fn on_start(&mut self, process: &dyn ProcessView) {
        self.sizes.reserve_exact(self.cap + 1);
        self.sizes.push(process.reached_count());
    }
    fn on_round(&mut self, process: &dyn ProcessView) {
        self.sizes.push(process.reached_count());
    }
    fn finish(self, _outcome: TrialOutcome, _process: &dyn ProcessView) -> Vec<usize> {
        self.sizes
    }
}

/// Drives one trial of an already-reset process to its stop condition.
///
/// This is the single trial loop of the workspace, shared by
/// [`Engine::run`] (which parallelizes over *trials*) and the campaign
/// scheduler (which parallelizes over *jobs*, each job running its
/// trials sequentially on a per-worker [`StepCtx`]). The caller is
/// responsible for reseeding `ctx` and resetting `process` beforehand;
/// given the same post-reset state and seed, the outcome is identical
/// whichever layer invokes it.
pub fn run_trial<'g, T, P, Ob>(
    process: &mut P,
    ctx: &mut StepCtx,
    stop: StopWhen,
    cap: usize,
    observer: Ob,
) -> Ob::Output
where
    T: Topology,
    P: ProcessState<'g, T>,
    Ob: Observer,
{
    run_trial_probed(process, ctx, stop, cap, observer, &mut NoProbe)
}

/// [`run_trial`] with a telemetry [`Probe`] attached.
///
/// Every instrumentation block is guarded by `if Pr::ENABLED`, an
/// associated const: with [`NoProbe`] (what [`run_trial`] passes) the
/// blocks are statically dead and this function compiles to exactly
/// the unprobed loop — probes-off stays bit-identical and
/// allocation-free by construction. With an enabled probe, each round
/// is observed *after* `step` returns: the per-round record is built
/// from view deltas (transmissions / reached snapshots taken just
/// before the step) and the probe never touches the trial RNG, so the
/// trajectory is identical with probes off and on.
pub fn run_trial_probed<'g, T, P, Ob, Pr>(
    process: &mut P,
    ctx: &mut StepCtx,
    stop: StopWhen,
    cap: usize,
    mut observer: Ob,
    probe: &mut Pr,
) -> Ob::Output
where
    T: Topology,
    P: ProcessState<'g, T>,
    Ob: Observer,
    Pr: Probe,
{
    observer.on_start(process);
    let rounds = loop {
        let stopped = match stop {
            StopWhen::Complete => process.is_complete(),
            StopWhen::Reached(v) => process.has_reached(v),
            StopWhen::ReachedCount(k) => process.reached_count() >= k,
            StopWhen::AtCap => false,
        };
        if stopped {
            break Some(process.rounds());
        }
        if process.rounds() >= cap {
            break None;
        }
        let (tx_before, reached_before) = if Pr::ENABLED {
            (process.transmissions(), process.reached_count())
        } else {
            (0, 0)
        };
        process.step(ctx);
        if Pr::ENABLED {
            let total_transmissions = process.transmissions();
            // saturating: coalescing families report `rounds × particles`,
            // which shrinks as particles merge.
            let transmissions = total_transmissions.saturating_sub(tx_before);
            let frontier = process.frontier_len();
            let reached = process.reached_count();
            probe.on_round(&RoundRecord {
                round: process.rounds(),
                frontier,
                // saturating: BIPS `reached` can shrink between rounds.
                new_covered: reached.saturating_sub(reached_before),
                reached,
                transmissions,
                total_transmissions,
                coalesced: transmissions.saturating_sub(frontier as u64),
                shard_traffic: &[],
            });
        }
        observer.on_round(process);
    };
    let outcome = TrialOutcome {
        rounds,
        executed: process.rounds(),
        reached: process.reached_count(),
        transmissions: process.transmissions(),
    };
    if Pr::ENABLED {
        probe.on_trial_end(&TrialTotals {
            rounds: outcome.rounds,
            executed: outcome.executed,
            reached: outcome.reached,
            transmissions: outcome.transmissions,
        });
    }
    observer.finish(outcome, process)
}

/// The unified trial executor. Owns everything the three former
/// bespoke loops duplicated: trial count, master seed, worker threads,
/// and the per-trial round cap.
#[derive(Debug, Clone, Copy)]
pub struct Engine {
    /// Independent Monte-Carlo trials.
    pub trials: usize,
    /// Master seed; trial `i` derives its own seed from it.
    pub master_seed: u64,
    /// Worker threads (0 = one per core).
    pub threads: usize,
    /// Hard per-trial round cap.
    pub cap: usize,
}

impl Engine {
    /// An engine running `trials` trials under `master_seed` with the
    /// given round cap, auto threading.
    pub fn new(trials: usize, master_seed: u64, cap: usize) -> Engine {
        Engine {
            trials,
            master_seed,
            threads: 0,
            cap,
        }
    }

    /// Overrides the worker thread count (1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> Engine {
        self.threads = threads;
        self
    }

    /// Runs the trials over a reusable process state per worker.
    ///
    /// `make_state` builds the worker's process state (once per worker
    /// thread); `reset` restores it to round 0 for a trial — it receives
    /// the trial index and the freshly reseeded [`StepCtx`] and may draw
    /// from `ctx.rng` (e.g. for random start sets) before stepping
    /// begins. `make_observer` builds the per-trial observer. Output
    /// order is by trial index, identical for any thread count.
    ///
    /// The trial loop monomorphizes over `P`, so the per-round stop
    /// check and `step` call compile to direct, inlinable code.
    pub fn run<'g, T, P, F, R, Ob, G>(
        &self,
        stop: StopWhen,
        make_state: F,
        reset: R,
        make_observer: G,
    ) -> Vec<Ob::Output>
    where
        T: Topology,
        P: ProcessState<'g, T>,
        F: Fn() -> P + Sync,
        R: Fn(&mut P, usize, &mut StepCtx) + Sync,
        Ob: Observer,
        G: Fn(usize) -> Ob + Sync,
        Ob::Output: Send,
    {
        let cap = self.cap;
        run_trials_with(
            RunConfig::new(self.trials, self.master_seed).with_threads(self.threads),
            || (make_state(), StepCtx::new()),
            |(process, ctx), seed, index| {
                ctx.reseed(seed);
                reset(process, index, ctx);
                run_trial(process, ctx, stop, cap, make_observer(index))
            },
        )
    }

    /// [`Engine::run`] with the no-op observer: one [`TrialOutcome`]
    /// per trial.
    pub fn run_outcomes<'g, T, P, F, R>(
        &self,
        stop: StopWhen,
        make_state: F,
        reset: R,
    ) -> Vec<TrialOutcome>
    where
        T: Topology,
        P: ProcessState<'g, T>,
        F: Fn() -> P + Sync,
        R: Fn(&mut P, usize, &mut StepCtx) + Sync,
    {
        self.run(stop, make_state, reset, |_| Completion)
    }

    /// [`Engine::run`] for a parsed [`ProcessSpec`] — the type-erased
    /// path string-driven entry points (CLI, config files) use. The
    /// [`BoxedProcess`] is built once per worker and reset per trial.
    /// Generic over the graph backend: CSR graphs and implicit
    /// topologies run through the same loop, bit-identically.
    pub fn run_spec<'g, T, Ob, G>(
        &self,
        g: &'g T,
        spec: &ProcessSpec,
        start: &[VertexId],
        stop: StopWhen,
        make_observer: G,
    ) -> Vec<Ob::Output>
    where
        T: Topology + Sync,
        Ob: Observer,
        G: Fn(usize) -> Ob + Sync,
        Ob::Output: Send,
    {
        self.run(
            stop,
            || spec.build(g, start),
            |p: &mut BoxedProcess<'g, T>, _, _| p.reset(g, start),
            make_observer,
        )
    }

    /// [`Engine::run_spec`] with the no-op observer.
    pub fn run_spec_outcomes<T: Topology + Sync>(
        &self,
        g: &T,
        spec: &ProcessSpec,
        start: &[VertexId],
        stop: StopWhen,
    ) -> Vec<TrialOutcome> {
        self.run_spec(g, spec, start, stop, |_| Completion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;
    use cobra_process::{Branching, Cobra, Laziness};

    fn k16_cobra(trials: usize, cap: usize) -> (Engine, cobra_graph::Graph) {
        (Engine::new(trials, 0xE6E, cap), generators::complete(16))
    }

    #[test]
    fn completes_and_orders_outcomes() {
        let (engine, g) = k16_cobra(12, 10_000);
        let outcomes = engine.run_outcomes(
            StopWhen::Complete,
            || Cobra::b2(&g, 0),
            |p, _, _| p.reset(&g, &[0]),
        );
        assert_eq!(outcomes.len(), 12);
        for o in &outcomes {
            assert!(o.rounds.is_some());
            assert_eq!(o.reached, 16);
            assert!(o.transmissions > 0);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (engine, g) = k16_cobra(16, 10_000);
        let seq = engine.with_threads(1).run_outcomes(
            StopWhen::Complete,
            || Cobra::b2(&g, 0),
            |p, _, _| p.reset(&g, &[0]),
        );
        let par = engine.with_threads(8).run_outcomes(
            StopWhen::Complete,
            || Cobra::b2(&g, 0),
            |p, _, _| p.reset(&g, &[0]),
        );
        assert_eq!(seq, par);
    }

    #[test]
    fn cap_censors_with_executed_rounds() {
        let engine = Engine::new(5, 1, 3);
        let g = generators::path(64);
        let outcomes = engine.run_outcomes(
            StopWhen::Complete,
            || Cobra::b2(&g, 0),
            |p, _, _| p.reset(&g, &[0]),
        );
        for o in outcomes {
            assert_eq!(o.rounds, None);
            assert_eq!(o.executed, 3);
        }
    }

    #[test]
    fn reached_stop_is_hitting_time() {
        let engine = Engine::new(10, 2, 100_000);
        let g = generators::cycle(24);
        let make = || Cobra::new(&g, &[0], Branching::B2, Laziness::None);
        let outcomes =
            engine.run_outcomes(StopWhen::Reached(12), make, |p, _, _| p.reset(&g, &[0]));
        for o in &outcomes {
            let hit = o.rounds.expect("must hit within cap");
            // Vertex 12 is 12 hops away; spreading one hop per round.
            assert!(hit >= 12, "hit {hit} beats the distance bound");
        }
        // Hitting the start vertex takes zero rounds.
        let zero = engine.run_outcomes(StopWhen::Reached(0), make, |p, _, _| p.reset(&g, &[0]));
        assert!(zero.iter().all(|o| o.rounds == Some(0)));
    }

    #[test]
    fn reached_count_stop_is_threshold_first_passage() {
        let engine = Engine::new(8, 6, 100_000);
        let g = generators::complete(32);
        let make = || Cobra::b2(&g, 0);
        let run = |stop| engine.run_outcomes(stop, make, |p, _, _| p.reset(&g, &[0]));
        let half = run(StopWhen::ReachedCount(16));
        let full = run(StopWhen::Complete);
        for (h, f) in half.iter().zip(&full) {
            assert!(h.reached >= 16, "stopped before the threshold");
            assert!(
                h.rounds.unwrap() <= f.rounds.unwrap(),
                "half coverage cannot take longer than full"
            );
        }
        // Threshold n is the completion condition itself.
        let all = run(StopWhen::ReachedCount(32));
        assert_eq!(all, full);
        // Threshold 1 is met by the start set at round 0.
        let trivial = run(StopWhen::ReachedCount(1));
        assert!(trivial.iter().all(|o| o.rounds == Some(0)));
    }

    #[test]
    fn trajectory_with_capacity_records_identically() {
        let engine = Engine::new(4, 11, 25);
        let g = generators::cycle(16);
        let run = |make_ob: fn() -> Trajectory| {
            engine.run(
                StopWhen::AtCap,
                || Cobra::b2(&g, 0),
                |p, _, _| p.reset(&g, &[0]),
                |_| make_ob(),
            )
        };
        let reserved = run(|| Trajectory::with_capacity(25));
        let lazy = run(Trajectory::default);
        assert_eq!(reserved, lazy, "pre-reserving must not change outputs");
        for t in &reserved {
            assert_eq!(t.len(), 26, "cap + 1 entries");
        }
    }

    #[test]
    fn at_cap_runs_exactly_cap_rounds() {
        let engine = Engine::new(4, 3, 7);
        let g = generators::complete(8);
        let outcomes = engine.run_outcomes(
            StopWhen::AtCap,
            || Cobra::b2(&g, 0),
            |p, _, _| p.reset(&g, &[0]),
        );
        for o in outcomes {
            assert_eq!(o.rounds, None);
            assert_eq!(o.executed, 7, "AtCap must run to the cap exactly");
        }
    }

    #[test]
    fn trajectory_observer_records_every_round() {
        let engine = Engine::new(6, 4, 10_000);
        let g = generators::complete(32);
        let trajectories = engine.run(
            StopWhen::Complete,
            || Cobra::b2(&g, 0),
            |p, _, _| p.reset(&g, &[0]),
            |_| Trajectory::default(),
        );
        for t in trajectories {
            assert_eq!(t[0], 1, "round 0 state is the start set");
            assert_eq!(*t.last().unwrap(), 32, "last entry is full coverage");
            assert!(
                t.windows(2).all(|w| w[0] <= w[1]),
                "COBRA coverage is monotone"
            );
        }
    }

    #[test]
    fn trial_index_can_vary_the_reset() {
        // Per-trial start vertices through the reset hook: hitting
        // vertex 0 takes zero rounds only for the trial starting there.
        let engine = Engine::new(6, 5, 100_000);
        let g = generators::cycle(12);
        let outcomes = engine.run_outcomes(
            StopWhen::Reached(0),
            || Cobra::b2(&g, 0),
            |p, i, _| p.reset(&g, &[(i as u32 % 12)]),
        );
        assert_eq!(outcomes[0].rounds, Some(0));
        for o in &outcomes[1..] {
            assert!(o.rounds.unwrap() > 0, "non-zero start hit instantly");
        }
    }

    #[test]
    fn spec_path_runs_through_the_engine() {
        // The ProcessSpec path hands the engine a BoxedProcess.
        let engine = Engine::new(5, 5, 100_000);
        let g = generators::petersen();
        let spec: ProcessSpec = "bips:b2".parse().unwrap();
        let outcomes = engine.run_spec_outcomes(&g, &spec, &[0], StopWhen::Complete);
        assert!(outcomes.iter().all(|o| o.rounds.is_some()));
    }

    #[test]
    fn spec_path_matches_monomorphic_path_exactly() {
        // Boxed-and-reset must be bit-identical to concrete-and-reset.
        let engine = Engine::new(8, 9, 100_000);
        let g = generators::torus(&[5, 5]);
        let spec: ProcessSpec = "cobra:b2".parse().unwrap();
        let boxed = engine.run_spec_outcomes(&g, &spec, &[0], StopWhen::Complete);
        let concrete = engine.run_outcomes(
            StopWhen::Complete,
            || Cobra::b2(&g, 0),
            |p, _, _| p.reset(&g, &[0]),
        );
        assert_eq!(boxed, concrete);
    }
}
