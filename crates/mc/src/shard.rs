//! The sharded sibling of [`run_trial`](crate::run_trial).
//!
//! [`run_sharded_trial`] drives a
//! [`ShardedState`] through the same
//! stop/cap protocol as the unsharded trial loop, seeding shard `i`'s
//! RNG stream from [`shard_seed`]`(trial_seed, i)`. Threads only change
//! wall-clock time — the trajectory is fixed by `(trial_seed, shards)`
//! — so outcomes are bit-identical across thread counts, and
//! [`run_sharded_trials`] fans a whole trial batch out sequentially
//! over one reusable state (the shards themselves are the parallelism).
//!
//! Observers are not supported here: the sharded state has no global
//! reached bitset to expose through `ProcessView`, so only the
//! stopping-reduced objectives (cover, hit, infection thresholds) run
//! sharded. The `SimSpec` layer enforces that before it ever gets here.

use crate::engine::{StopWhen, TrialOutcome};
use crate::seed::{shard_seed, trial_seed};
use cobra_graph::{Topology, VertexId};
use cobra_obs::{NoProbe, Probe, RoundRecord, TrialTotals};
use cobra_process::ShardedState;

/// Runs one trial of a sharded process to its stop condition (the cap
/// always applies on top), resetting `state` from `start` with the
/// per-shard streams of `trial_seed`. Mirrors
/// [`run_trial`](crate::run_trial)'s outcome semantics exactly:
/// `rounds = None` iff censored at the cap (always, for
/// [`StopWhen::AtCap`]).
pub fn run_sharded_trial<T: Topology + Sync>(
    state: &mut ShardedState<'_, T>,
    trial_seed: u64,
    start: VertexId,
    stop: StopWhen,
    cap: usize,
    threads: usize,
) -> TrialOutcome {
    run_sharded_trial_probed(state, trial_seed, start, stop, cap, threads, &mut NoProbe)
}

/// [`run_sharded_trial`] with a telemetry [`Probe`] attached — the
/// sharded sibling of
/// [`run_trial_probed`](crate::run_trial_probed), with the same
/// contract: `if Pr::ENABLED` blocks compile away under `NoProbe`, and
/// enabled probes observe view deltas after each `step` without ever
/// touching the per-shard RNG streams. When `state` is
/// [`instrument`](ShardedState::instrument)ed, each record additionally
/// carries the round's per-sender outbox traffic.
pub fn run_sharded_trial_probed<T: Topology + Sync, Pr: Probe>(
    state: &mut ShardedState<'_, T>,
    trial_seed: u64,
    start: VertexId,
    stop: StopWhen,
    cap: usize,
    threads: usize,
    probe: &mut Pr,
) -> TrialOutcome {
    state.reset(start, |i| shard_seed(trial_seed, i));
    let rounds = loop {
        let stopped = match stop {
            StopWhen::Complete => state.is_complete(),
            StopWhen::Reached(v) => state.has_reached(v),
            StopWhen::ReachedCount(k) => state.reached_count() >= k,
            StopWhen::AtCap => false,
        };
        if stopped {
            break Some(state.rounds());
        }
        if state.rounds() >= cap {
            break None;
        }
        let (tx_before, reached_before) = if Pr::ENABLED {
            (state.transmissions(), state.reached_count())
        } else {
            (0, 0)
        };
        state.step(threads);
        if Pr::ENABLED {
            let total_transmissions = state.transmissions();
            // saturating: mirrors the unsharded engine — not every process
            // family's transmission counter is monotone across a step.
            let transmissions = total_transmissions.saturating_sub(tx_before);
            let frontier = state.frontier_len();
            let reached = state.reached_count();
            probe.on_round(&RoundRecord {
                round: state.rounds(),
                frontier,
                new_covered: reached.saturating_sub(reached_before),
                reached,
                transmissions,
                total_transmissions,
                coalesced: transmissions.saturating_sub(frontier as u64),
                shard_traffic: state.last_outbox_traffic(),
            });
        }
    };
    let outcome = TrialOutcome {
        rounds,
        executed: state.rounds(),
        reached: state.reached_count(),
        transmissions: state.transmissions(),
    };
    if Pr::ENABLED {
        probe.on_trial_end(&TrialTotals {
            rounds: outcome.rounds,
            executed: outcome.executed,
            reached: outcome.reached,
            transmissions: outcome.transmissions,
        });
    }
    outcome
}

/// Runs `trials` sharded trials under `master_seed`, in trial order,
/// over one reusable state. Trial `i` sees only
/// `trial_seed(master_seed, i)` — the same derivation as the unsharded
/// runner — so a sharded campaign point and a sharded CLI run agree.
pub fn run_sharded_trials<T: Topology + Sync>(
    state: &mut ShardedState<'_, T>,
    trials: usize,
    master_seed: u64,
    start: VertexId,
    stop: StopWhen,
    cap: usize,
    threads: usize,
) -> Vec<TrialOutcome> {
    (0..trials)
        .map(|i| {
            run_sharded_trial(
                state,
                trial_seed(master_seed, i as u64),
                start,
                stop,
                cap,
                threads,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;
    use cobra_process::ProcessSpec;

    fn state_for<'g, T: Topology + Sync>(
        g: &'g T,
        spec: &str,
        shards: usize,
    ) -> ShardedState<'g, T> {
        let spec: ProcessSpec = spec.parse().unwrap();
        ShardedState::new(g, spec.shard_kernel().expect("shardable"), shards)
    }

    #[test]
    fn outcomes_are_thread_count_invariant() {
        let g = generators::hypercube(8);
        let mut s = state_for(&g, "cobra:b2", 4);
        let run = |s: &mut ShardedState<_>, threads| {
            run_sharded_trials(s, 6, 0x5EED, 0, StopWhen::Complete, 100_000, threads)
        };
        let seq = run(&mut s, 1);
        let par = run(&mut s, 8);
        assert_eq!(seq, par);
        for o in &seq {
            assert_eq!(o.reached, 256);
            assert!(o.rounds.is_some());
        }
    }

    #[test]
    fn censoring_matches_unsharded_protocol() {
        let g = generators::path(64);
        let mut s = state_for(&g, "cobra:b2", 2);
        let o = run_sharded_trial(&mut s, 7, 0, StopWhen::Complete, 3, 1);
        assert_eq!(o.rounds, None);
        assert_eq!(o.executed, 3);
        // AtCap runs to the cap exactly and never completes.
        let o = run_sharded_trial(&mut s, 7, 0, StopWhen::AtCap, 5, 1);
        assert_eq!(o.rounds, None);
        assert_eq!(o.executed, 5);
    }

    #[test]
    fn hitting_and_threshold_stops() {
        let g = generators::cycle(24);
        let mut s = state_for(&g, "cobra:b2", 3);
        let o = run_sharded_trial(&mut s, 11, 0, StopWhen::Reached(12), 100_000, 1);
        assert!(o.rounds.expect("must hit") >= 12, "beat the distance bound");
        let o = run_sharded_trial(&mut s, 11, 0, StopWhen::Reached(0), 100_000, 1);
        assert_eq!(o.rounds, Some(0), "start vertex hits instantly");
        let o = run_sharded_trial(&mut s, 11, 0, StopWhen::ReachedCount(1), 100_000, 1);
        assert_eq!(o.rounds, Some(0));
    }

    #[test]
    fn trials_use_independent_seeds() {
        let g = generators::hypercube(7);
        let mut s = state_for(&g, "bips:b2", 4);
        let outcomes = run_sharded_trials(&mut s, 8, 3, 0, StopWhen::Complete, 100_000, 1);
        let rounds: std::collections::HashSet<_> = outcomes.iter().map(|o| o.executed).collect();
        assert!(rounds.len() > 1, "8 trials all identical: {outcomes:?}");
    }
}
