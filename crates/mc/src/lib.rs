//! Deterministic parallel Monte-Carlo trial runner.
//!
//! Every experiment in the reproduction is a map from trial index to an
//! independent simulation outcome. This crate provides:
//!
//! * [`seed`] — SplitMix64 seed derivation: one master seed fans out to
//!   per-trial seeds that are stable across runs, thread counts, and
//!   platforms;
//! * [`runner`] — an embarrassingly-parallel executor over
//!   `std::thread::scope` whose output is ordered by trial index, so a
//!   parallel run is bit-identical to a sequential one;
//! * [`engine`] — the unified [`Engine`]: one monomorphized trial loop
//!   driving any [`cobra_process::ProcessState`] under a [`StopWhen`]
//!   condition and a round cap, with pluggable [`Observer`] hooks
//!   (cover detection, trajectories, transmission accounting, round
//!   snapshots) reading through [`cobra_process::ProcessView`]. All
//!   Monte-Carlo estimation in the workspace goes through it. Each
//!   worker thread owns one reusable process state and one
//!   [`cobra_process::StepCtx`] (RNG + scratch buffers), so
//!   steady-state trials perform zero heap allocation;
//! * [`objective`] — the first-class estimand: a parseable, sweepable
//!   [`Objective`] value (`cover`, `hit:V`/`hit:far`, `infection:T`,
//!   `duality:h{..}`, `trajectory`) that resolves to a [`StopWhen`] per
//!   graph and reduces trial outcomes through a streaming
//!   [`StoppingAccumulator`] (Welford + P² quantiles, O(1) memory).
//!
//! An atomic work counter plus scoped threads cover everything the
//! workload needs.

pub mod engine;
pub mod objective;
pub mod queue;
pub mod runner;
pub mod seed;
pub mod shard;

pub use engine::{
    run_trial, run_trial_probed, Completion, Engine, Observer, StopWhen, Trajectory, TrialOutcome,
};
pub use objective::{
    HitTarget, Objective, StoppingAccumulator, StoppingEstimate, OBJECTIVE_USAGES,
};
pub use queue::{CancelToken, Claimed, JobQueue, LaneId, QueueClosed, QueueStats};
pub use runner::{run_jobs, run_trials, run_trials_with, RunConfig};
pub use seed::{key_seed, shard_seed, trial_seed, SeedSequence};
pub use shard::{run_sharded_trial, run_sharded_trial_probed, run_sharded_trials};
