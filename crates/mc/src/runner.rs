//! Parallel trial execution with deterministic, index-ordered output.

use crate::seed::trial_seed;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration for a batch of Monte-Carlo trials.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of independent trials.
    pub trials: usize,
    /// Master seed; trial `i` receives `trial_seed(master_seed, i)`.
    pub master_seed: u64,
    /// Worker threads; 0 means "one per available core".
    pub threads: usize,
}

impl RunConfig {
    /// `trials` trials under `master_seed` with automatic thread count.
    pub fn new(trials: usize, master_seed: u64) -> RunConfig {
        RunConfig {
            trials,
            master_seed,
            threads: 0,
        }
    }

    /// Overrides the thread count (1 = sequential).
    pub fn with_threads(mut self, threads: usize) -> RunConfig {
        self.threads = threads;
        self
    }

    fn effective_threads(&self) -> usize {
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let t = if self.threads == 0 {
            auto
        } else {
            self.threads
        };
        t.min(self.trials.max(1))
    }
}

/// Runs `config.trials` independent trials of `f(seed, index)` and
/// returns the outputs ordered by trial index.
///
/// The trial function sees only its derived seed and index, so the
/// result vector is identical whatever the thread count — parallelism is
/// an implementation detail, never an experimental variable.
pub fn run_trials<T, F>(config: RunConfig, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64, usize) -> T + Sync,
{
    run_trials_with(config, || (), |(), seed, index| f(seed, index))
}

/// [`run_trials`] with per-worker state: `init` runs once on each worker
/// thread and the resulting value is threaded through every trial that
/// worker executes.
///
/// This is the hook the Monte-Carlo engine uses to allocate one process
/// state and one `StepCtx` per worker and recycle them across trials —
/// the worker state is deliberately *not* part of the determinism
/// contract, so `f` must derive every observable output from `(seed,
/// index)` alone (reusing buffers is fine; leaking results between
/// trials is not). Outputs are ordered by trial index, identical for any
/// thread count.
pub fn run_trials_with<S, T, I, F>(config: RunConfig, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, u64, usize) -> T + Sync,
{
    if config.trials == 0 {
        return Vec::new();
    }
    let threads = config.effective_threads();
    if threads <= 1 {
        let mut state = init();
        return (0..config.trials)
            .map(|i| f(&mut state, trial_seed(config.master_seed, i as u64), i))
            .collect();
    }

    let counter = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(config.trials));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Each worker drains the shared counter and buffers its
                // outputs locally; one lock per worker at the end. The
                // worker state lives for the whole drain.
                let mut state = init();
                let mut local: Vec<(usize, T)> = Vec::new();
                loop {
                    let i = counter.fetch_add(1, Ordering::Relaxed);
                    if i >= config.trials {
                        break;
                    }
                    local.push((
                        i,
                        f(&mut state, trial_seed(config.master_seed, i as u64), i),
                    ));
                }
                results
                    .lock()
                    .expect("worker panicked while holding results lock")
                    .extend(local);
            });
        }
    });
    let mut collected = results.into_inner().expect("all workers joined");
    collected.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(collected.len(), config.trials);
    collected.into_iter().map(|(_, t)| t).collect()
}

/// Runs `jobs` indexed jobs across the worker pool with reusable
/// per-worker state — the *job-level* analogue of [`run_trials_with`].
///
/// Where trials derive a seed from their index, jobs own their seeding
/// (a campaign point's seed comes from its content key via
/// [`crate::seed::key_seed`]), so `f` receives only the worker state
/// and the job index. Each worker thread builds its state once (`init`)
/// and reuses it across every job it executes — this is how the
/// campaign scheduler gives each worker one long-lived
/// `cobra_process::StepCtx` whose scratch buffers amortize across whole
/// sweep points, not just trials. Output is ordered by job index,
/// identical for any thread count.
///
/// Since the service-mode work, this rides [`crate::queue::JobQueue`] —
/// the same scheduler the `cobra-serve` daemon multiplexes campaigns
/// on — as a single-lane batch: all jobs submitted up front, the queue
/// closed, and [`crate::queue::drain_with`] worker threads draining it.
/// Results are unchanged by construction: `f` sees only `(state,
/// index)`, so scheduling (direct or queued) is never observable.
pub fn run_jobs<S, T, I, F>(threads: usize, jobs: usize, init: I, f: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let auto = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = if threads == 0 { auto } else { threads }.min(jobs);

    let queue: crate::queue::JobQueue<usize> = crate::queue::JobQueue::new();
    let lane = queue.lane();
    for i in 0..jobs {
        queue
            .submit(lane, 1, i)
            .expect("queue closed before batch submission finished");
    }
    queue.close();

    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(jobs));
    crate::queue::drain_with(&queue, threads, init, |state, index, _token| {
        let out = f(state, index);
        results
            .lock()
            .expect("worker panicked while holding results lock")
            .push((index, out));
    });
    let mut collected = results.into_inner().expect("all workers joined");
    collected.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(collected.len(), jobs);
    collected.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u64> = run_trials(RunConfig::new(0, 1), |s, _| s);
        assert!(out.is_empty());
    }

    #[test]
    fn output_is_index_ordered() {
        let out: Vec<usize> = run_trials(RunConfig::new(500, 9), |_, i| i);
        let want: Vec<usize> = (0..500).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn parallel_equals_sequential() {
        let work = |seed: u64, i: usize| {
            // A seed-dependent value with some CPU time to encourage
            // interleaving.
            let mut acc = seed;
            for _ in 0..50 {
                acc = acc.rotate_left(7).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i as u64;
            }
            acc
        };
        let seq: Vec<u64> = run_trials(RunConfig::new(300, 77).with_threads(1), work);
        let par: Vec<u64> = run_trials(RunConfig::new(300, 77).with_threads(8), work);
        let auto: Vec<u64> = run_trials(RunConfig::new(300, 77), work);
        assert_eq!(seq, par);
        assert_eq!(seq, auto);
    }

    #[test]
    fn every_trial_runs_exactly_once() {
        let ran = AtomicU64::new(0);
        let out: Vec<()> = run_trials(RunConfig::new(123, 5).with_threads(4), |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(out.len(), 123);
        assert_eq!(ran.load(Ordering::Relaxed), 123);
    }

    #[test]
    fn seeds_are_the_documented_derivation() {
        let out: Vec<u64> = run_trials(RunConfig::new(10, 2024).with_threads(3), |s, _| s);
        let want: Vec<u64> = (0..10).map(|i| crate::seed::trial_seed(2024, i)).collect();
        assert_eq!(out, want);
    }

    #[test]
    fn worker_state_is_initialised_per_worker_and_reused() {
        // Sequential: exactly one init, state threaded through trials.
        let inits = AtomicU64::new(0);
        let out: Vec<u64> = run_trials_with(
            RunConfig::new(10, 3).with_threads(1),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0u64
            },
            |state, _seed, _i| {
                *state += 1;
                *state
            },
        );
        assert_eq!(inits.load(Ordering::Relaxed), 1);
        assert_eq!(out, (1..=10).collect::<Vec<u64>>());

        // Parallel: at most one init per worker, every trial served.
        let inits = AtomicU64::new(0);
        let out: Vec<usize> = run_trials_with(
            RunConfig::new(64, 3).with_threads(4),
            || {
                inits.fetch_add(1, Ordering::Relaxed);
            },
            |_state, _seed, i| i,
        );
        assert!(inits.load(Ordering::Relaxed) <= 4);
        assert_eq!(out, (0..64).collect::<Vec<usize>>());
    }

    #[test]
    fn run_jobs_is_index_ordered_and_complete() {
        let ran = AtomicU64::new(0);
        let out: Vec<usize> = run_jobs(
            4,
            37,
            || (),
            |(), i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i
            },
        );
        assert_eq!(out, (0..37).collect::<Vec<usize>>());
        assert_eq!(ran.load(Ordering::Relaxed), 37);
    }

    #[test]
    fn run_jobs_reuses_worker_state() {
        // Sequential: one worker state threaded through all jobs.
        let out: Vec<u64> = run_jobs(
            1,
            5,
            || 0u64,
            |state, _| {
                *state += 1;
                *state
            },
        );
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn thread_count_larger_than_trials_is_fine() {
        let out: Vec<usize> = run_trials(RunConfig::new(3, 0).with_threads(64), |_, i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }
}
