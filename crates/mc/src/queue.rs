//! Cancellable fair-share job queue — the scheduling core shared by
//! [`crate::runner::run_jobs`], the campaign runner, and the
//! `cobra-serve` daemon.
//!
//! # Model
//!
//! A [`JobQueue`] multiplexes *lanes* (one per campaign / client) onto a
//! pool of worker threads. Submission order within a lane is FIFO;
//! service across lanes is **deficit round-robin** (DRR): each lane
//! carries a deficit counter topped up by a fixed quantum every time the
//! scheduler visits it, and a lane's head job is dispatched only once its
//! deficit covers the job's declared cost. Declaring trial counts as
//! costs makes "fair" mean *fair by compute*, not by job count — a
//! campaign of 1024-trial points cannot starve one of 8-trial points.
//! A lane whose FIFO empties is retired and its deficit forfeited
//! (classic DRR), so an idle campaign cannot bank credit.
//!
//! The schedule is a pure function of (submission order, costs, quantum,
//! dispatch order), so fair-share interleaving is deterministic under a
//! single worker — which is how the tests pin it. Results never depend
//! on the schedule at all: every job derives its outputs from its own
//! seed/key, so queue-path results are bit-identical to direct runs.
//!
//! # Ownership and cancellation rules
//!
//! * [`JobQueue`] is a cheap [`Clone`] handle (`Arc` inside); any clone
//!   may submit, claim, or shut down. Workers block in [`JobQueue::next`]
//!   until a job is dispatchable or the queue is closed and drained.
//! * [`JobQueue::submit`] returns a [`CancelToken`]. The token is a
//!   *request*, not a preemption: a queued job that is cancelled before
//!   dispatch is discarded without running; a job already claimed keeps
//!   its worker until the job function observes `token.is_cancelled()`
//!   at its next trial boundary and returns early. The queue never
//!   interrupts a running trial.
//! * [`Claimed`] is the dispatch guard: it owns the job payload (taken
//!   with [`Claimed::take`]) and decrements the in-flight count when
//!   dropped, so a panicking worker still releases its slot.
//! * [`JobQueue::close`] seals the queue (further submits fail) but lets
//!   queued work drain; [`JobQueue::shutdown`] additionally cancels every
//!   queued *and* in-flight token — the graceful-drain half of SIGINT
//!   handling. [`JobQueue::wait_idle`] blocks until nothing is queued or
//!   running, which is the store-flush barrier.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Default DRR quantum: cost units credited to a lane per scheduler
/// visit. With costs measured in trials, 32 matches the default
/// campaign trial count, so "one visit ≈ one typical point".
pub const DEFAULT_QUANTUM: u64 = 32;

/// Cooperative cancellation flag shared between submitter and worker.
///
/// Cloning shares the flag. Workers poll [`CancelToken::is_cancelled`]
/// at trial boundaries; the queue polls it before dispatch and drops
/// cancelled jobs without running them.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token (for direct calls outside a queue).
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Requests cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any clone has called [`CancelToken::cancel`].
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// Handle naming one lane (submission stream) of a [`JobQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaneId(u64);

/// Error returned by [`JobQueue::submit`] after [`JobQueue::close`] or
/// [`JobQueue::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueClosed;

impl std::fmt::Display for QueueClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue is closed to new submissions")
    }
}

impl std::error::Error for QueueClosed {}

/// Point-in-time queue counters (see [`JobQueue::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Jobs queued and not yet dispatched.
    pub depth: usize,
    /// Jobs claimed by workers and not yet finished.
    pub in_flight: usize,
    /// Lanes currently holding queued jobs.
    pub lanes: usize,
    /// Total jobs ever accepted by `submit`.
    pub submitted: u64,
    /// Total jobs finished by workers (including ones that observed
    /// cancellation mid-run and returned early).
    pub completed: u64,
    /// Total jobs discarded while queued because their token was
    /// cancelled before dispatch.
    pub cancelled: u64,
}

struct Pending<J> {
    job: J,
    cost: u64,
    token: CancelToken,
}

struct Lane<J> {
    key: u64,
    deficit: u64,
    fifo: VecDeque<Pending<J>>,
}

struct State<J> {
    lanes: Vec<Lane<J>>,
    /// Index into `lanes` of the next lane the scheduler visits.
    cursor: usize,
    quantum: u64,
    depth: usize,
    in_flight: usize,
    closed: bool,
    next_lane: u64,
    next_claim: u64,
    inflight_tokens: HashMap<u64, CancelToken>,
    submitted: u64,
    completed: u64,
    cancelled: u64,
}

impl<J> State<J> {
    /// DRR dispatch: drop cancelled heads, retire empty lanes, credit
    /// quantum per visit, and serve the first affordable head.
    fn pop_next(&mut self) -> Option<Pending<J>> {
        loop {
            if self.lanes.is_empty() {
                return None;
            }
            if self.cursor >= self.lanes.len() {
                self.cursor = 0;
            }
            let lane = &mut self.lanes[self.cursor];
            while let Some(head) = lane.fifo.front() {
                if head.token.is_cancelled() {
                    lane.fifo.pop_front();
                    self.depth -= 1;
                    self.cancelled += 1;
                } else {
                    break;
                }
            }
            if lane.fifo.is_empty() {
                // Retiring an empty lane forfeits its deficit (classic
                // DRR: no banking credit while idle).
                self.lanes.remove(self.cursor);
                continue;
            }
            let cost = lane.fifo.front().expect("non-empty fifo").cost;
            if lane.deficit >= cost {
                lane.deficit -= cost;
                let pending = lane.fifo.pop_front().expect("non-empty fifo");
                self.depth -= 1;
                if lane.fifo.is_empty() {
                    self.lanes.remove(self.cursor);
                }
                return Some(pending);
            }
            lane.deficit += self.quantum;
            self.cursor += 1;
        }
    }

    fn stats(&self) -> QueueStats {
        QueueStats {
            depth: self.depth,
            in_flight: self.in_flight,
            lanes: self.lanes.len(),
            submitted: self.submitted,
            completed: self.completed,
            cancelled: self.cancelled,
        }
    }
}

struct Inner<J> {
    state: Mutex<State<J>>,
    /// Signalled on submit / close / shutdown: a waiting worker may have
    /// something to do (or a reason to exit).
    work: Condvar,
    /// Signalled whenever depth and in-flight both reach zero.
    idle: Condvar,
}

/// Multi-lane fair-share queue; see the [module docs](self) for the
/// scheduling model and ownership rules.
pub struct JobQueue<J> {
    inner: Arc<Inner<J>>,
}

impl<J> Clone for JobQueue<J> {
    fn clone(&self) -> JobQueue<J> {
        JobQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<J> Default for JobQueue<J> {
    fn default() -> JobQueue<J> {
        JobQueue::new()
    }
}

impl<J> JobQueue<J> {
    /// A queue with the [`DEFAULT_QUANTUM`].
    pub fn new() -> JobQueue<J> {
        JobQueue::with_quantum(DEFAULT_QUANTUM)
    }

    /// A queue crediting `quantum` cost units per lane visit (min 1).
    pub fn with_quantum(quantum: u64) -> JobQueue<J> {
        JobQueue {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    lanes: Vec::new(),
                    cursor: 0,
                    quantum: quantum.max(1),
                    depth: 0,
                    in_flight: 0,
                    closed: false,
                    next_lane: 0,
                    next_claim: 0,
                    inflight_tokens: HashMap::new(),
                    submitted: 0,
                    completed: 0,
                    cancelled: 0,
                }),
                work: Condvar::new(),
                idle: Condvar::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, State<J>> {
        self.inner.state.lock().expect("queue lock poisoned")
    }

    /// Registers a new lane (one per campaign / client stream).
    pub fn lane(&self) -> LaneId {
        let mut st = self.lock();
        let id = st.next_lane;
        st.next_lane += 1;
        LaneId(id)
    }

    /// Enqueues `job` on `lane` with the given cost (in the same units
    /// as the quantum; clamped to ≥ 1) and returns its cancellation
    /// token. Fails with [`QueueClosed`] after `close` / `shutdown`.
    pub fn submit(&self, lane: LaneId, cost: u64, job: J) -> Result<CancelToken, QueueClosed> {
        let token = CancelToken::new();
        {
            let mut st = self.lock();
            if st.closed {
                return Err(QueueClosed);
            }
            let pending = Pending {
                job,
                cost: cost.max(1),
                token: token.clone(),
            };
            if let Some(l) = st.lanes.iter_mut().find(|l| l.key == lane.0) {
                l.fifo.push_back(pending);
            } else {
                st.lanes.push(Lane {
                    key: lane.0,
                    deficit: 0,
                    fifo: VecDeque::from([pending]),
                });
            }
            st.depth += 1;
            st.submitted += 1;
        }
        self.inner.work.notify_one();
        Ok(token)
    }

    /// Blocks until a job is dispatchable and claims it, or returns
    /// `None` once the queue is closed and fully drained. Cancelled
    /// queued jobs are discarded here, never dispatched.
    pub fn next(&self) -> Option<Claimed<J>> {
        let mut st = self.lock();
        loop {
            if let Some(pending) = st.pop_next() {
                st.in_flight += 1;
                let claim_id = st.next_claim;
                st.next_claim += 1;
                st.inflight_tokens.insert(claim_id, pending.token.clone());
                return Some(Claimed {
                    job: Some(pending.job),
                    token: pending.token,
                    claim_id,
                    inner: Arc::clone(&self.inner),
                });
            }
            if st.closed {
                return None;
            }
            st = self.inner.work.wait(st).expect("queue lock poisoned");
        }
    }

    /// Seals the queue: no further submissions, queued work still
    /// drains, workers exit from [`JobQueue::next`] once it is empty.
    pub fn close(&self) {
        self.lock().closed = true;
        self.inner.work.notify_all();
    }

    /// Graceful shutdown: closes the queue, cancels every queued job
    /// (discarded without running), and cancels every in-flight token so
    /// running jobs stop at their next trial boundary. Does not block;
    /// follow with [`JobQueue::wait_idle`] to drain.
    pub fn shutdown(&self) {
        {
            let mut st = self.lock();
            st.closed = true;
            for lane in &mut st.lanes {
                for pending in lane.fifo.drain(..) {
                    pending.token.cancel();
                }
            }
            let dropped = st.depth as u64;
            st.cancelled += dropped;
            st.depth = 0;
            st.lanes.clear();
            st.cursor = 0;
            for token in st.inflight_tokens.values() {
                token.cancel();
            }
            if st.in_flight == 0 {
                self.inner.idle.notify_all();
            }
        }
        self.inner.work.notify_all();
    }

    /// Blocks until nothing is queued and nothing is in flight.
    pub fn wait_idle(&self) {
        let mut st = self.lock();
        while st.depth > 0 || st.in_flight > 0 {
            st = self.inner.idle.wait(st).expect("queue lock poisoned");
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> QueueStats {
        self.lock().stats()
    }

    /// True after [`JobQueue::close`] or [`JobQueue::shutdown`].
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

/// Dispatch guard for one claimed job: take the payload with
/// [`Claimed::take`]; dropping the guard releases the in-flight slot
/// (even on panic) and wakes [`JobQueue::wait_idle`] waiters.
pub struct Claimed<J> {
    job: Option<J>,
    token: CancelToken,
    claim_id: u64,
    inner: Arc<Inner<J>>,
}

impl<J> Claimed<J> {
    /// Moves the job payload out (panics if called twice).
    pub fn take(&mut self) -> J {
        self.job.take().expect("job already taken")
    }

    /// This job's cancellation token.
    pub fn token(&self) -> &CancelToken {
        &self.token
    }
}

impl<J> Drop for Claimed<J> {
    fn drop(&mut self) {
        let mut st = self.inner.state.lock().expect("queue lock poisoned");
        st.in_flight -= 1;
        st.completed += 1;
        st.inflight_tokens.remove(&self.claim_id);
        if st.depth == 0 && st.in_flight == 0 {
            self.inner.idle.notify_all();
        }
    }
}

/// Runs `threads` scoped workers (min 1) that drain `queue` until it is
/// closed and empty. Each worker builds its state once via `init` and
/// calls `f(state, job, token)` per claimed job — the queue-riding
/// analogue of [`crate::runner::run_trials_with`]'s worker loop.
pub fn drain_with<S, J, I, F>(queue: &JobQueue<J>, threads: usize, init: I, f: F)
where
    J: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, J, &CancelToken) + Sync,
{
    let worker = || {
        let mut state = init();
        while let Some(mut claim) = queue.next() {
            let job = claim.take();
            f(&mut state, job, claim.token());
            drop(claim);
        }
    };
    if threads <= 1 {
        worker();
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(worker);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains the queue with one worker and returns dispatch order.
    fn drain_order(queue: &JobQueue<&'static str>) -> Vec<&'static str> {
        queue.close();
        let mut order = Vec::new();
        while let Some(mut claim) = queue.next() {
            order.push(claim.take());
        }
        order
    }

    #[test]
    fn fair_share_order_is_deterministic() {
        // Two lanes, unit costs, quantum 2: the scheduler alternates
        // two-job bursts. The exact interleaving is pinned — this is
        // the determinism contract for fair-share ordering.
        let queue: JobQueue<&'static str> = JobQueue::with_quantum(2);
        let a = queue.lane();
        let b = queue.lane();
        for job in ["a1", "a2", "a3", "a4"] {
            queue.submit(a, 1, job).unwrap();
        }
        for job in ["b1", "b2", "b3", "b4"] {
            queue.submit(b, 1, job).unwrap();
        }
        assert_eq!(
            drain_order(&queue),
            vec!["a1", "a2", "b1", "b2", "a3", "a4", "b3", "b4"]
        );
    }

    #[test]
    fn fair_share_weights_by_cost_not_job_count() {
        // Lane H submits cost-4 jobs, lane L cost-1 jobs, quantum 4:
        // per full rotation H affords one job and L four — equal
        // compute, not equal job counts.
        let queue: JobQueue<&'static str> = JobQueue::with_quantum(4);
        let h = queue.lane();
        let l = queue.lane();
        for job in ["h1", "h2"] {
            queue.submit(h, 4, job).unwrap();
        }
        for job in ["l1", "l2", "l3", "l4", "l5", "l6", "l7", "l8"] {
            queue.submit(l, 1, job).unwrap();
        }
        assert_eq!(
            drain_order(&queue),
            vec!["h1", "l1", "l2", "l3", "l4", "h2", "l5", "l6", "l7", "l8"]
        );
    }

    #[test]
    fn lane_fifo_order_is_preserved() {
        let queue: JobQueue<u32> = JobQueue::new();
        let lane = queue.lane();
        for i in 0..16 {
            queue.submit(lane, 3, i).unwrap();
        }
        queue.close();
        let mut got = Vec::new();
        while let Some(mut c) = queue.next() {
            got.push(c.take());
        }
        assert_eq!(got, (0..16).collect::<Vec<u32>>());
    }

    #[test]
    fn cancelled_queued_job_is_never_dispatched() {
        let queue: JobQueue<u32> = JobQueue::new();
        let lane = queue.lane();
        queue.submit(lane, 1, 1).unwrap();
        let token = queue.submit(lane, 1, 2).unwrap();
        queue.submit(lane, 1, 3).unwrap();
        token.cancel();
        queue.close();
        let mut got = Vec::new();
        while let Some(mut c) = queue.next() {
            got.push(c.take());
        }
        assert_eq!(got, vec![1, 3]);
        let stats = queue.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.depth, 0);
    }

    #[test]
    fn shutdown_cancels_pending_and_inflight() {
        let queue: JobQueue<u32> = JobQueue::new();
        let lane = queue.lane();
        queue.submit(lane, 1, 1).unwrap();
        queue.submit(lane, 1, 2).unwrap();
        let claim = queue.next().unwrap();
        assert!(!claim.token().is_cancelled());
        queue.shutdown();
        // The in-flight token flips; the queued job is discarded.
        assert!(claim.token().is_cancelled());
        drop(claim);
        assert!(queue.next().is_none());
        assert!(queue.submit(lane, 1, 3).is_err());
        let stats = queue.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.in_flight, 0);
        queue.wait_idle(); // trivially satisfied, must not hang
    }

    #[test]
    fn close_drains_then_workers_exit() {
        let queue: JobQueue<usize> = JobQueue::new();
        let lane = queue.lane();
        for i in 0..100 {
            queue.submit(lane, 1, i).unwrap();
        }
        queue.close();
        let seen = Mutex::new(Vec::new());
        drain_with(
            &queue,
            4,
            || (),
            |(), job, _token| {
                seen.lock().unwrap().push(job);
            },
        );
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<usize>>());
        assert_eq!(queue.stats().completed, 100);
    }

    #[test]
    fn wait_idle_blocks_until_drained() {
        let queue: JobQueue<u32> = JobQueue::new();
        let lane = queue.lane();
        for i in 0..8 {
            queue.submit(lane, 1, i).unwrap();
        }
        queue.close();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                drain_with(
                    &queue,
                    2,
                    || (),
                    |(), _job, _token| {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    },
                );
            });
            queue.wait_idle();
            let stats = queue.stats();
            assert_eq!(stats.depth, 0);
            assert_eq!(stats.in_flight, 0);
        });
    }

    #[test]
    fn submit_after_close_fails() {
        let queue: JobQueue<u32> = JobQueue::new();
        let lane = queue.lane();
        queue.close();
        assert_eq!(queue.submit(lane, 1, 7).unwrap_err(), QueueClosed);
    }
}
