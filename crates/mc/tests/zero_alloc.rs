//! Regression: the engine's `NoProbe` trial loop allocates nothing.
//!
//! `run_trial` is `run_trial_probed` under the default [`NoProbe`],
//! whose `ENABLED = false` makes every `if Pr::ENABLED` block compile
//! away — the telemetry layer must be invisible when off, in time *and*
//! in allocation. This installs a counting global allocator (the same
//! pattern as `cobra-process`'s `zero_alloc` suite), warms a state +
//! context with one full trial through the engine, then replays the
//! identical trial and asserts the counter does not move.
//!
//! The file contains a single #[test] so no concurrent test can touch
//! the global counter.

use cobra_graph::generators;
use cobra_mc::{run_trial, Completion, StopWhen};
use cobra_process::{Branching, Cobra, Laziness, ProcessState, StepCtx};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator wrapper counting every allocation and reallocation
/// made by *opted-in* threads — the thread-local gate keeps the libtest
/// harness's own bookkeeping threads out of the measurement window.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialized: reading it never allocates.
    static TRACKED: Cell<bool> = const { Cell::new(false) };
}

fn counting(on: bool) -> bool {
    TRACKED.try_with(|t| t.replace(on)).unwrap_or(false)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKED.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKED.try_with(Cell::get).unwrap_or(false) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn noprobe_engine_trials_are_allocation_free() {
    counting(true);
    let g = generators::hypercube(10);
    let mut ctx = StepCtx::new();
    let mut cobra = Cobra::new(&g, &[0], Branching::B2, Laziness::None);

    // Warm-up trial: scratch buffers grow to their high-water mark.
    ctx.reseed(7);
    let warm = run_trial(
        &mut cobra,
        &mut ctx,
        StopWhen::Complete,
        1_000_000,
        Completion,
    );
    assert!(warm.rounds.is_some(), "warm-up trial covers");

    // Replay the identical trial through the engine loop: the stop
    // checks, the NoProbe hooks, and the observer must all add zero
    // allocations on top of the (already allocation-free) kernel.
    cobra.reset(&g, &[0]);
    ctx.reseed(7);
    let before = allocs();
    let replay = run_trial(
        &mut cobra,
        &mut ctx,
        StopWhen::Complete,
        1_000_000,
        Completion,
    );
    let delta = allocs() - before;
    assert_eq!(replay, warm, "replay diverged from warm-up");
    assert_eq!(
        delta, 0,
        "steady-state NoProbe engine trial performed {delta} heap allocations"
    );

    // A fresh seed stays allocation-free too (capacity is seeded by the
    // warm-up, not by the particular trajectory).
    cobra.reset(&g, &[0]);
    ctx.reseed(8);
    let before = allocs();
    let fresh = run_trial(
        &mut cobra,
        &mut ctx,
        StopWhen::Complete,
        1_000_000,
        Completion,
    );
    assert!(fresh.rounds.is_some(), "fresh-seed trial covers");
    assert_eq!(allocs() - before, 0, "fresh-seed engine trial allocated");
}
