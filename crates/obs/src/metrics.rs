//! In-memory metrics registry: named counters, gauges, and histograms.
//!
//! A [`MetricsRegistry`] is a plain `BTreeMap`-backed accumulator the
//! CLI fills during a run and dumps once at the end (`--metrics`). It
//! is deliberately not global and not thread-shared — callers own one
//! and merge into it, which keeps the measurement path free of atomics.
//!
//! Long-running multi-threaded owners (the `cobra-serve` daemon, whose
//! HTTP handlers and workers record concurrently and whose
//! `GET /metrics` endpoint reads while they do) wrap one in a
//! [`SharedRegistry`] — a mutex around the same registry, paying for
//! synchronization only where a service actually needs it.

use crate::timer::{Phase, PhaseTimers};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::timer::Log2Histogram;

/// Named counters, gauges, and log2-bucket histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Log2Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at zero).
    pub fn counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set gauge `name` to `value`.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The histogram named `name`, created empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Log2Histogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Current value of counter `name`, if set.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Merge each non-empty phase histogram of `timers` into
    /// `"<prefix>.<phase>_ns"`.
    pub fn record_timers(&mut self, prefix: &str, timers: &PhaseTimers) {
        for phase in Phase::ALL {
            let h = timers.histogram(phase);
            if !h.is_empty() {
                self.histogram(&format!("{prefix}.{}_ns", phase.name()))
                    .merge(h);
            }
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Human-readable multi-line dump, sorted by metric name.
    ///
    /// Counters render as `name = value`, gauges as `name = value`,
    /// histograms as count/min/p50/p99/max/mean (bucketed
    /// approximations, exact to a power of two).
    pub fn render(&self) -> String {
        let mut out = String::from("metrics:\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  counter {name} = {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  gauge   {name} = {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  hist    {name}: count={} min={} p50~{} p99~{} max={} mean={}",
                h.count(),
                h.min(),
                h.approx_quantile(0.5),
                h.approx_quantile(0.99),
                h.max(),
                h.mean(),
            );
        }
        out
    }
}

/// A cloneable, thread-safe handle over one [`MetricsRegistry`] — what
/// the `cobra-serve` daemon hands to its HTTP handlers and queue
/// workers so counters (`serve.dedup.hits`), gauges (`queue.depth`),
/// and per-endpoint latency histograms land in one place that
/// `GET /metrics` can render at any moment.
///
/// Single-run CLI paths should keep using a plain [`MetricsRegistry`];
/// this wrapper exists only where concurrent recording is real.
#[derive(Debug, Clone, Default)]
pub struct SharedRegistry {
    inner: Arc<Mutex<MetricsRegistry>>,
}

impl SharedRegistry {
    /// A fresh shared registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `name` (created at zero).
    pub fn counter(&self, name: &str, delta: u64) {
        self.with(|m| m.counter(name, delta));
    }

    /// Set gauge `name` to `value`.
    pub fn gauge(&self, name: &str, value: f64) {
        self.with(|m| m.gauge(name, value));
    }

    /// Record one observation into histogram `name` (created empty).
    pub fn observe(&self, name: &str, value: u64) {
        self.with(|m| m.histogram(name).record(value));
    }

    /// Current value of counter `name`, if set.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.with(|m| m.counter_value(name))
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.with(|m| m.gauge_value(name))
    }

    /// Human-readable dump (same format as [`MetricsRegistry::render`]).
    pub fn render(&self) -> String {
        self.with(|m| m.render())
    }

    /// Runs `f` with the registry locked — for batch recording or
    /// snapshot reads beyond the single-metric helpers.
    pub fn with<T>(&self, f: impl FnOnce(&mut MetricsRegistry) -> T) -> T {
        f(&mut self.inner.lock().expect("metrics registry poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_render_sorted() {
        let mut m = MetricsRegistry::new();
        m.counter("b.count", 2);
        m.counter("b.count", 3);
        m.gauge("a.bytes", 12.5);
        m.histogram("lat").record(100);
        assert_eq!(m.counter_value("b.count"), Some(5));
        assert_eq!(m.gauge_value("a.bytes"), Some(12.5));
        assert!(!m.is_empty());
        let text = m.render();
        assert!(text.contains("counter b.count = 5"), "{text}");
        assert!(text.contains("gauge   a.bytes = 12.5"), "{text}");
        assert!(text.contains("hist    lat: count=1"), "{text}");
    }

    #[test]
    fn shared_registry_accumulates_across_threads() {
        let shared = SharedRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let handle = shared.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        handle.counter("serve.points.computed", 1);
                        handle.observe("http.latency_ns", 1000 + i);
                    }
                    handle.gauge("queue.depth", 3.0);
                });
            }
        });
        assert_eq!(shared.counter_value("serve.points.computed"), Some(400));
        assert_eq!(shared.gauge_value("queue.depth"), Some(3.0));
        let text = shared.render();
        assert!(
            text.contains("hist    http.latency_ns: count=400"),
            "{text}"
        );
    }

    #[test]
    fn record_timers_namespaces_phases() {
        let mut t = PhaseTimers::new();
        t.record(Phase::Exchange, 1000);
        let mut m = MetricsRegistry::new();
        m.record_timers("phase", &t);
        let text = m.render();
        assert!(text.contains("phase.exchange_ns"), "{text}");
        assert!(
            !text.contains("phase.draw_ns"),
            "empty phases skipped: {text}"
        );
    }
}
