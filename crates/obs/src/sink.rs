//! Delivery side of the probe layer: object-safe sinks and the probe
//! adapter that feeds them.
//!
//! The engine monomorphizes over [`Probe`]; a *sink* is the dynamic,
//! per-run destination behind it. [`SinkProbe`] is the bridge: an
//! `ENABLED = true` probe holding `&mut dyn RoundSink`, so one traced
//! code path serves files, memory buffers, and metric registries alike.

use crate::metrics::MetricsRegistry;
use crate::probe::{Probe, RoundRecord, TrialTotals};
use crate::timer::Phase;
use cobra_util::json::{obj, Json};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Object-safe receiver of per-round records and per-trial totals.
///
/// `trial` is the 0-based trial index; rounds within a trial arrive in
/// order (round 1, 2, …) followed by exactly one `on_trial_end`.
pub trait RoundSink {
    /// One executed round of `trial`.
    fn on_round(&mut self, trial: usize, record: &RoundRecord<'_>);

    /// Final totals of `trial`.
    fn on_trial_end(&mut self, trial: usize, totals: &TrialTotals);

    /// Per-trial phase-time split (total nanoseconds per phase over the
    /// trial). Only called when phase timing is enabled; defaults to a
    /// no-op.
    fn on_trial_phases(&mut self, _trial: usize, _phase_nanos: &[(Phase, u64)]) {}
}

/// Probe adapter delivering records of one trial to a dynamic sink.
///
/// `ENABLED = true`: the engine computes full [`RoundRecord`]s and this
/// adapter stamps them with the trial index. Constructed per trial;
/// tracing therefore runs trials sequentially (one `&mut` sink).
pub struct SinkProbe<'a> {
    trial: usize,
    sink: &'a mut dyn RoundSink,
}

impl<'a> SinkProbe<'a> {
    /// A probe feeding `sink`, stamping records with `trial`.
    pub fn new(trial: usize, sink: &'a mut dyn RoundSink) -> Self {
        SinkProbe { trial, sink }
    }
}

impl Probe for SinkProbe<'_> {
    const ENABLED: bool = true;

    fn on_round(&mut self, record: &RoundRecord<'_>) {
        self.sink.on_round(self.trial, record);
    }

    fn on_trial_end(&mut self, totals: &TrialTotals) {
        self.sink.on_trial_end(self.trial, totals);
    }
}

/// Sink that drops everything (placeholder when only totals matter).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl RoundSink for NullSink {
    fn on_round(&mut self, _trial: usize, _record: &RoundRecord<'_>) {}
    fn on_trial_end(&mut self, _trial: usize, _totals: &TrialTotals) {}
}

/// Owned copy of one [`RoundRecord`], stamped with its trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedRound {
    /// 0-based trial index.
    pub trial: usize,
    /// 1-based round index.
    pub round: usize,
    /// Frontier size after the round.
    pub frontier: usize,
    /// Vertices first covered this round.
    pub new_covered: usize,
    /// Total vertices reached after the round.
    pub reached: usize,
    /// Transmissions this round.
    pub transmissions: u64,
    /// Cumulative transmissions.
    pub total_transmissions: u64,
    /// Coalesced picks this round.
    pub coalesced: u64,
    /// Per-shard inbound traffic (empty when unsharded).
    pub shard_traffic: Vec<u64>,
}

/// In-memory sink buffering every record — the test workhorse.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// Every observed round, in arrival order.
    pub rounds: Vec<RecordedRound>,
    /// `(trial, totals)` per finished trial.
    pub totals: Vec<(usize, TrialTotals)>,
    /// `(trial, [(phase, nanos)])` per finished trial, when timed.
    pub phases: Vec<(usize, Vec<(Phase, u64)>)>,
}

impl RoundSink for MemorySink {
    fn on_round(&mut self, trial: usize, r: &RoundRecord<'_>) {
        self.rounds.push(RecordedRound {
            trial,
            round: r.round,
            frontier: r.frontier,
            new_covered: r.new_covered,
            reached: r.reached,
            transmissions: r.transmissions,
            total_transmissions: r.total_transmissions,
            coalesced: r.coalesced,
            shard_traffic: r.shard_traffic.to_vec(),
        });
    }

    fn on_trial_end(&mut self, trial: usize, totals: &TrialTotals) {
        self.totals.push((trial, *totals));
    }

    fn on_trial_phases(&mut self, trial: usize, phase_nanos: &[(Phase, u64)]) {
        self.phases.push((trial, phase_nanos.to_vec()));
    }
}

/// Structured JSONL trace writer over any [`Write`] target.
///
/// Three record types, one JSON object per line, serialized with
/// `cobra_util::json` (exact integer round-trip):
///
/// | `type`   | fields                                                         |
/// |----------|----------------------------------------------------------------|
/// | `round`  | `trial round frontier new_covered reached transmissions total_transmissions coalesced [shard_traffic]` |
/// | `trial`  | `trial rounds(executed-or-null) executed reached transmissions` |
/// | `phases` | `trial` + `<phase>_ns` per timed phase                          |
///
/// `every = N` keeps only rounds `1, N+1, 2N+1, …` of each trial so
/// large-graph traces stay bounded; `trial`/`phases` lines are always
/// written. I/O errors are stashed and surfaced by
/// [`finish`](TraceWriter::finish), keeping the sink trait infallible.
pub struct TraceWriter<W: Write> {
    out: W,
    every: usize,
    error: Option<io::Error>,
}

impl TraceWriter<BufWriter<File>> {
    /// Create (truncate) a trace file at `path`.
    pub fn create(path: &Path, every: usize) -> io::Result<Self> {
        Ok(TraceWriter::new(BufWriter::new(File::create(path)?), every))
    }
}

impl<W: Write> TraceWriter<W> {
    /// Wrap an output stream; `every` is clamped to at least 1.
    pub fn new(out: W, every: usize) -> Self {
        TraceWriter {
            out,
            every: every.max(1),
            error: None,
        }
    }

    fn emit(&mut self, line: &Json) {
        if self.error.is_some() {
            return;
        }
        let mut text = line.to_string_compact();
        text.push('\n');
        if let Err(e) = self.out.write_all(text.as_bytes()) {
            self.error = Some(e);
        }
    }

    /// Flush and return the first I/O error encountered, if any.
    pub fn finish(mut self) -> io::Result<()> {
        match self.error.take() {
            Some(e) => Err(e),
            None => self.out.flush(),
        }
    }
}

impl<W: Write> RoundSink for TraceWriter<W> {
    fn on_round(&mut self, trial: usize, r: &RoundRecord<'_>) {
        if !r.round.saturating_sub(1).is_multiple_of(self.every) {
            return;
        }
        let mut fields = vec![
            ("type", Json::Str("round".into())),
            ("trial", Json::Int(trial as i128)),
            ("round", Json::Int(r.round as i128)),
            ("frontier", Json::Int(r.frontier as i128)),
            ("new_covered", Json::Int(r.new_covered as i128)),
            ("reached", Json::Int(r.reached as i128)),
            ("transmissions", Json::Int(r.transmissions as i128)),
            (
                "total_transmissions",
                Json::Int(r.total_transmissions as i128),
            ),
            ("coalesced", Json::Int(r.coalesced as i128)),
        ];
        if !r.shard_traffic.is_empty() {
            fields.push((
                "shard_traffic",
                Json::Array(
                    r.shard_traffic
                        .iter()
                        .map(|&t| Json::Int(t as i128))
                        .collect(),
                ),
            ));
        }
        self.emit(&obj(fields));
    }

    fn on_trial_end(&mut self, trial: usize, t: &TrialTotals) {
        self.emit(&obj([
            ("type", Json::Str("trial".into())),
            ("trial", Json::Int(trial as i128)),
            (
                "rounds",
                t.rounds.map_or(Json::Null, |r| Json::Int(r as i128)),
            ),
            ("executed", Json::Int(t.executed as i128)),
            ("reached", Json::Int(t.reached as i128)),
            ("transmissions", Json::Int(t.transmissions as i128)),
        ]));
    }

    fn on_trial_phases(&mut self, trial: usize, phase_nanos: &[(Phase, u64)]) {
        let mut fields = vec![
            ("type", Json::Str("phases".into())),
            ("trial", Json::Int(trial as i128)),
        ];
        for &(phase, nanos) in phase_nanos {
            fields.push((phase_ns_key(phase), Json::Int(nanos as i128)));
        }
        self.emit(&obj(fields));
    }
}

/// `&'static str` key for a phase's nanosecond field.
fn phase_ns_key(phase: Phase) -> &'static str {
    match phase {
        Phase::Draw => "draw_ns",
        Phase::Gather => "gather_ns",
        Phase::Coalesce => "coalesce_ns",
        Phase::ShardGather => "shard_gather_ns",
        Phase::Exchange => "exchange_ns",
        Phase::Commit => "commit_ns",
    }
}

/// Sink that folds records into a [`MetricsRegistry`] while forwarding
/// them to an inner sink.
///
/// Counters: `rounds`, `transmissions`, `coalesced`, `new_covered`,
/// `trials`, `trials.censored`. Histograms: `round.frontier`,
/// `trial.rounds`, and (when timed) `phase.<name>_ns`.
pub struct RegistrySink<'a> {
    inner: &'a mut dyn RoundSink,
    registry: MetricsRegistry,
}

impl<'a> RegistrySink<'a> {
    /// Wrap `inner`, accumulating into a fresh registry.
    pub fn new(inner: &'a mut dyn RoundSink) -> Self {
        RegistrySink {
            inner,
            registry: MetricsRegistry::new(),
        }
    }

    /// The accumulated registry.
    pub fn into_registry(self) -> MetricsRegistry {
        self.registry
    }
}

impl RoundSink for RegistrySink<'_> {
    fn on_round(&mut self, trial: usize, r: &RoundRecord<'_>) {
        self.registry.counter("rounds", 1);
        self.registry.counter("transmissions", r.transmissions);
        self.registry.counter("coalesced", r.coalesced);
        self.registry.counter("new_covered", r.new_covered as u64);
        self.registry
            .histogram("round.frontier")
            .record(r.frontier as u64);
        self.inner.on_round(trial, r);
    }

    fn on_trial_end(&mut self, trial: usize, t: &TrialTotals) {
        self.registry.counter("trials", 1);
        if t.rounds.is_none() {
            self.registry.counter("trials.censored", 1);
        }
        self.registry
            .histogram("trial.rounds")
            .record(t.executed as u64);
        self.inner.on_trial_end(trial, t);
    }

    fn on_trial_phases(&mut self, trial: usize, phase_nanos: &[(Phase, u64)]) {
        for &(phase, nanos) in phase_nanos {
            self.registry.histogram(phase_ns_key(phase)).record(nanos);
        }
        self.inner.on_trial_phases(trial, phase_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize) -> RoundRecord<'static> {
        RoundRecord {
            round,
            frontier: round * 2,
            new_covered: round,
            reached: round * 3,
            transmissions: 4,
            total_transmissions: 4 * round as u64,
            coalesced: 1,
            shard_traffic: &[],
        }
    }

    #[test]
    fn trace_writer_round_trips_and_subsamples() {
        let mut buf = Vec::new();
        {
            let mut w = TraceWriter::new(&mut buf, 2);
            for r in 1..=5 {
                w.on_round(0, &record(r));
            }
            w.on_trial_end(
                0,
                &TrialTotals {
                    rounds: Some(5),
                    executed: 5,
                    reached: 15,
                    transmissions: 20,
                },
            );
            w.on_trial_phases(0, &[(Phase::Draw, 123), (Phase::Coalesce, 7)]);
            w.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
        // every=2 keeps rounds 1, 3, 5; trial + phases lines always land.
        assert_eq!(lines.len(), 5);
        let kept: Vec<u64> = lines
            .iter()
            .filter(|j| j.get("type").and_then(Json::as_str) == Some("round"))
            .map(|j| j.get("round").and_then(Json::as_u64).unwrap())
            .collect();
        assert_eq!(kept, vec![1, 3, 5]);
        let trial = &lines[3];
        assert_eq!(trial.get("type").and_then(Json::as_str), Some("trial"));
        assert_eq!(trial.get("rounds").and_then(Json::as_u64), Some(5));
        let phases = &lines[4];
        assert_eq!(phases.get("draw_ns").and_then(Json::as_u64), Some(123));
        assert_eq!(phases.get("coalesce_ns").and_then(Json::as_u64), Some(7));
    }

    #[test]
    fn sink_probe_stamps_trials_and_memory_sink_buffers() {
        let mut sink = MemorySink::default();
        {
            let mut probe = SinkProbe::new(3, &mut sink);
            probe.on_round(&record(1));
            probe.on_trial_end(&TrialTotals {
                rounds: None,
                executed: 9,
                reached: 3,
                transmissions: 36,
            });
        }
        assert_eq!(sink.rounds.len(), 1);
        assert_eq!(sink.rounds[0].trial, 3);
        assert_eq!(
            sink.totals,
            vec![(
                3,
                TrialTotals {
                    rounds: None,
                    executed: 9,
                    reached: 3,
                    transmissions: 36,
                }
            )]
        );
    }

    #[test]
    fn registry_sink_accumulates_and_forwards() {
        let mut inner = MemorySink::default();
        let registry = {
            let mut sink = RegistrySink::new(&mut inner);
            for r in 1..=3 {
                sink.on_round(0, &record(r));
            }
            sink.on_trial_end(
                0,
                &TrialTotals {
                    rounds: Some(3),
                    executed: 3,
                    reached: 9,
                    transmissions: 12,
                },
            );
            sink.into_registry()
        };
        assert_eq!(inner.rounds.len(), 3);
        assert_eq!(inner.totals.len(), 1);
        let text = registry.render();
        assert!(text.contains("rounds = 3"), "missing counter in:\n{text}");
        assert!(text.contains("transmissions = 12"), "{text}");
    }
}
