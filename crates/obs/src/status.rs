//! Whole-line status output that cannot interleave.
//!
//! The CLI historically printed status through bare `println!` /
//! `eprintln!`, which issue multiple small writes per line — two
//! processes (or a tracing thread and a status line) could interleave
//! mid-line. These helpers format the entire line (or multi-line
//! block) into one buffer and hand it to the OS in a single
//! `write_all`, then flush.

use std::io::{self, Write};

fn write_block(mut w: impl Write, text: &str, newline: bool) {
    let mut buf = String::with_capacity(text.len() + 1);
    buf.push_str(text);
    if newline {
        buf.push('\n');
    }
    let _ = w.write_all(buf.as_bytes());
    let _ = w.flush();
}

/// Write `text` plus a newline to stdout in one call.
///
/// Embedded newlines are fine: the whole block lands atomically with
/// respect to other `status` writers.
pub fn out_line(text: &str) {
    write_block(io::stdout().lock(), text, true);
}

/// Write `text` plus a newline to stderr in one call.
pub fn err_line(text: &str) {
    write_block(io::stderr().lock(), text, true);
}

/// Overwrite the current stderr line: carriage return + `text`, no
/// newline. Used for live progress; finish with [`err_line`] to
/// terminate the line.
pub fn err_transient(text: &str) {
    let mut buf = String::with_capacity(text.len() + 1);
    buf.push('\r');
    buf.push_str(text);
    write_block(io::stderr().lock(), &buf, false);
}
