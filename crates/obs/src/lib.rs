//! Telemetry for the COBRA stack: per-round probes, phase timers,
//! trace sinks, and a metrics registry — always compiled, zero-cost
//! when off.
//!
//! The paper's cover-time story is really a story about frontier
//! dynamics: how fast the COBRA frontier grows and how much coalescing
//! eats the branching factor each round. This crate gives the engine
//! eyes on those quantities without taxing the measurement path:
//!
//! - [`Probe`] is the monomorphized observation hook the trial loops
//!   (`cobra_mc::run_trial_probed`, `run_sharded_trial_probed`) are
//!   generic over. The default [`NoProbe`] sets `ENABLED = false`, so
//!   every instrumentation block (`if Pr::ENABLED { .. }`) compiles to
//!   nothing — the probes-off path is instruction-for-instruction the
//!   uninstrumented loop, which is what keeps the golden bit-identity
//!   and zero-allocation regressions trivially true.
//! - **The probe contract is observe-only.** Probes run *after*
//!   `step()` returns and compute every [`RoundRecord`] field from
//!   [`ProcessView`]-style deltas; they never draw from the trial RNG
//!   and never mutate process state, so the RNG stream — and therefore
//!   every per-trial outcome — is identical with probes off and on.
//! - [`RoundSink`] is the object-safe delivery side: [`TraceWriter`]
//!   streams exact-round-trip JSONL (with `every=N` subsampling so
//!   hypercube:20 traces stay bounded), [`MemorySink`] buffers records
//!   for tests, [`RegistrySink`] folds them into a [`MetricsRegistry`].
//! - [`PhaseTimers`] + [`PhaseClock`] split rounds into phases (draw /
//!   gather / coalesce unsharded; shard-gather / exchange / commit
//!   sharded) recorded into hand-rolled [`Log2Histogram`]s — no
//!   external histogram dependency.
//! - [`status`] writes whole status lines in one `write` call each so
//!   concurrent writers cannot interleave partial lines.
//!
//! `ProcessView` lives upstream in `cobra-process`; this crate is a
//! leaf (it depends only on `cobra-util` for JSON) so every layer of
//! the stack can use it.
//!
//! ```
//! use cobra_obs::{MemorySink, Probe, RoundRecord, RoundSink, SinkProbe};
//!
//! let mut sink = MemorySink::default();
//! let mut probe = SinkProbe::new(0, &mut sink);
//! probe.on_round(&RoundRecord {
//!     round: 1,
//!     frontier: 2,
//!     new_covered: 2,
//!     reached: 3,
//!     transmissions: 4,
//!     total_transmissions: 4,
//!     coalesced: 2,
//!     shard_traffic: &[],
//! });
//! assert_eq!(sink.rounds.len(), 1);
//! assert_eq!(sink.rounds[0].coalesced, 2);
//! ```
//!
//! [`ProcessView`]: https://docs.rs/cobra-process

pub mod metrics;
pub mod probe;
pub mod sink;
pub mod status;
pub mod timer;

pub use metrics::{MetricsRegistry, SharedRegistry};
pub use probe::{NoProbe, Probe, RoundRecord, TrialTotals};
pub use sink::{
    MemorySink, NullSink, RecordedRound, RegistrySink, RoundSink, SinkProbe, TraceWriter,
};
pub use timer::{Log2Histogram, Phase, PhaseClock, PhaseTimers, PHASES};
