//! The monomorphized probe trait and the per-round record it receives.
//!
//! Trial loops are generic over `Pr: Probe` and guard every
//! instrumentation block with `if Pr::ENABLED { .. }`. Because
//! `ENABLED` is an associated *const*, the guard is resolved at
//! monomorphization time: with [`NoProbe`] the whole block — including
//! the pre-`step` snapshot reads — is dead code and compiles away.
//!
//! **Observe-only contract.** A probe sees the process *after* a round
//! committed; it must not mutate process state and has no access to the
//! trial RNG. Every field of [`RoundRecord`] is derived from read-only
//! view deltas, so enabling a probe can never perturb the RNG stream or
//! the trajectory it observes.

/// One executed round, observed immediately after `step()` returned.
///
/// All quantities are *post-round*; per-round deltas are computed by
/// the engine from snapshots taken just before the step (only when the
/// probe is enabled).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoundRecord<'a> {
    /// 1-based index of the round that just executed.
    pub round: usize,
    /// Frontier size after the round (active set for frontier
    /// processes; falls back to the reached count for processes
    /// without a distinct frontier).
    pub frontier: usize,
    /// Vertices covered for the first time during this round.
    pub new_covered: usize,
    /// Total vertices reached after the round.
    pub reached: usize,
    /// Transmissions performed during this round.
    pub transmissions: u64,
    /// Cumulative transmissions after the round.
    pub total_transmissions: u64,
    /// Picks that coalesced this round: transmissions that landed on a
    /// destination another pick already claimed
    /// (`transmissions − |frontier after|`, saturating).
    pub coalesced: u64,
    /// Inbound cross-shard exchange traffic per shard (vertex ids
    /// received at the barrier). Empty for unsharded execution.
    pub shard_traffic: &'a [u64],
}

/// Final totals of one trial, mirroring `cobra_mc::TrialOutcome`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialTotals {
    /// Rounds until the stop condition, `None` if the cap censored the
    /// trial.
    pub rounds: Option<usize>,
    /// Rounds actually executed (equals the cap when censored).
    pub executed: usize,
    /// Vertices reached when the trial ended.
    pub reached: usize,
    /// Total transmissions performed.
    pub transmissions: u64,
}

/// Observation hook the trial loops monomorphize over.
///
/// Implementations receive every round record and the trial totals.
/// The `ENABLED` const gates all instrumentation: when `false` the
/// engine skips snapshotting and record construction entirely.
pub trait Probe {
    /// Whether instrumentation blocks should be compiled/executed.
    const ENABLED: bool;

    /// Called after each executed round with the observed record.
    fn on_round(&mut self, _record: &RoundRecord<'_>) {}

    /// Called once when the trial ends.
    fn on_trial_end(&mut self, _totals: &TrialTotals) {}
}

/// The default probe: observes nothing, costs nothing.
///
/// With `ENABLED = false` every `if Pr::ENABLED` block in the trial
/// loop is statically dead, so the probed loop compiles to exactly the
/// unprobed one — bit-identity and zero-allocation guarantees hold by
/// construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;
}
