//! Phase timers: hand-rolled log2-bucket histograms over nanoseconds.
//!
//! The build environment is offline, so there is no external histogram
//! crate; [`Log2Histogram`] is 65 fixed buckets (`[u64; 65]`) plus
//! count/sum/min/max — `Clone` + `Debug` so it can ride inside
//! `StepCtx` scratch state.

use std::time::Instant;

/// Number of distinct [`Phase`] values (length of [`Phase::ALL`]).
pub const PHASES: usize = 6;

/// A timed slice of one simulation round.
///
/// Unsharded rounds split into [`Draw`](Phase::Draw) (sampling pick
/// tokens), [`Gather`](Phase::Gather) (resolving picks to neighbor
/// ids), and [`Coalesce`](Phase::Coalesce) (dedup + frontier commit).
/// Sharded rounds split into [`ShardGather`](Phase::ShardGather)
/// (shard-local draw+route), [`Exchange`](Phase::Exchange) (the outbox
/// barrier), and [`Commit`](Phase::Commit) (inbox drain + commit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Unsharded: sample pick tokens for the whole frontier.
    Draw,
    /// Unsharded: resolve pick tokens to destination vertices.
    Gather,
    /// Unsharded: deduplicate destinations and commit the next frontier.
    Coalesce,
    /// Sharded: shard-local draw + route into outboxes.
    ShardGather,
    /// Sharded: the cross-shard outbox/inbox barrier.
    Exchange,
    /// Sharded: drain inboxes and commit per-shard state.
    Commit,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; PHASES] = [
        Phase::Draw,
        Phase::Gather,
        Phase::Coalesce,
        Phase::ShardGather,
        Phase::Exchange,
        Phase::Commit,
    ];

    /// Stable snake_case name used in traces and metric keys.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Draw => "draw",
            Phase::Gather => "gather",
            Phase::Coalesce => "coalesce",
            Phase::ShardGather => "shard_gather",
            Phase::Exchange => "exchange",
            Phase::Commit => "commit",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Fixed-size log2-bucket histogram for `u64` samples.
///
/// Bucket 0 counts zero samples; bucket `i ≥ 1` counts samples in
/// `[2^(i-1), 2^i)`. Recording is a branch-free `leading_zeros` plus
/// one increment — cheap enough for per-phase, per-round use.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of `value`: 0 for zero, else `64 − leading_zeros`.
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Lower bound of the bucket holding the `q`-quantile sample
    /// (`q` clamped to `[0, 1]`; 0 when empty). A bucketed
    /// approximation: exact to within one power of two.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << (i - 1) };
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

/// One [`Log2Histogram`] of nanosecond laps per [`Phase`].
///
/// `Clone` + `Debug` because it travels inside `StepCtx` (which derives
/// both); a boxed `Option` there keeps the uninstrumented context small.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimers {
    hists: [Log2Histogram; PHASES],
}

impl PhaseTimers {
    /// Empty timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one lap of `phase`, in nanoseconds.
    pub fn record(&mut self, phase: Phase, nanos: u64) {
        self.hists[phase.index()].record(nanos);
    }

    /// The histogram for one phase.
    pub fn histogram(&self, phase: Phase) -> &Log2Histogram {
        &self.hists[phase.index()]
    }

    /// Total recorded nanoseconds per phase, indexed like [`Phase::ALL`].
    pub fn sums(&self) -> [u64; PHASES] {
        let mut out = [0u64; PHASES];
        for (o, h) in out.iter_mut().zip(self.hists.iter()) {
            *o = h.sum();
        }
        out
    }

    /// True if no phase has any samples.
    pub fn is_empty(&self) -> bool {
        self.hists.iter().all(Log2Histogram::is_empty)
    }

    /// Fold another set of timers into this one.
    pub fn merge(&mut self, other: &PhaseTimers) {
        for (h, o) in self.hists.iter_mut().zip(other.hists.iter()) {
            h.merge(o);
        }
    }
}

/// Stopwatch that laps consecutive phases into a [`PhaseTimers`].
///
/// `start` stamps the clock; each `lap(phase)` charges the time since
/// the previous lap (or start) to `phase`. Kernels hold one clock per
/// round, only when timing is enabled, so the untimed path never calls
/// [`Instant::now`].
pub struct PhaseClock<'a> {
    timers: &'a mut PhaseTimers,
    last: Instant,
}

impl<'a> PhaseClock<'a> {
    /// Start the clock now.
    pub fn start(timers: &'a mut PhaseTimers) -> Self {
        PhaseClock {
            timers,
            last: Instant::now(),
        }
    }

    /// Charge the time since the previous lap to `phase`.
    pub fn lap(&mut self, phase: Phase) {
        let now = Instant::now();
        let nanos = now.duration_since(self.last).as_nanos() as u64;
        self.timers.record(phase, nanos);
        self.last = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        let buckets: Vec<(u64, u64)> = h.nonzero_buckets().collect();
        // 0 | 1 | [2,4) ×2 | [4,8) ×2 | [8,16) | [512,1024) | [1024,2048) | top
        assert_eq!(
            buckets,
            vec![
                (0, 1),
                (1, 1),
                (2, 2),
                (4, 2),
                (8, 1),
                (512, 1),
                (1024, 1),
                (1u64 << 63, 1),
            ]
        );
    }

    #[test]
    fn quantiles_and_merge() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        for v in 1..=64u64 {
            a.record(v);
        }
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 65);
        assert_eq!(a.max(), 1000);
        assert_eq!(a.approx_quantile(1.0), 512);
        assert!(a.approx_quantile(0.5) <= 64);
        let empty = Log2Histogram::new();
        assert_eq!(empty.approx_quantile(0.5), 0);
        assert_eq!(empty.mean(), 0);
    }

    #[test]
    fn phase_timers_record_and_sum() {
        let mut t = PhaseTimers::new();
        assert!(t.is_empty());
        t.record(Phase::Draw, 100);
        t.record(Phase::Draw, 50);
        t.record(Phase::Commit, 7);
        assert_eq!(t.histogram(Phase::Draw).count(), 2);
        let sums = t.sums();
        assert_eq!(sums[0], 150);
        assert_eq!(sums[5], 7);
        let mut u = PhaseTimers::new();
        u.merge(&t);
        assert_eq!(u.sums(), t.sums());
    }

    #[test]
    fn phase_clock_laps_into_named_phases() {
        let mut t = PhaseTimers::new();
        let mut clock = PhaseClock::start(&mut t);
        clock.lap(Phase::ShardGather);
        clock.lap(Phase::Exchange);
        clock.lap(Phase::Commit);
        for p in [Phase::ShardGather, Phase::Exchange, Phase::Commit] {
            assert_eq!(t.histogram(p).count(), 1, "phase {} missing", p.name());
        }
        assert_eq!(t.histogram(Phase::Draw).count(), 0);
    }
}
