//! Stable, dependency-free content hashing (FNV-1a).
//!
//! The campaign subsystem addresses results by a hash of the resolved
//! point spec, and memoized graph builds are keyed by spec digests. Both
//! need a hash that is **stable across runs, platforms, and compiler
//! versions** — which rules out `std::hash` (`SipHash` with a random
//! per-process key). FNV-1a is tiny, deterministic, and good enough for
//! content addressing at the scale of a parameter sweep (thousands of
//! points); full-key strings are stored alongside the hash, so even a
//! collision cannot silently corrupt a store.

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// [`fnv1a_64`] over a string's UTF-8 bytes.
pub fn fnv1a_str(s: &str) -> u64 {
    fnv1a_64(s.as_bytes())
}

/// Incremental FNV-1a hasher for streaming input (file ingestion digests,
/// binary-cache section checksums). Feeding the same bytes in any chunking
/// yields the same digest as a single [`fnv1a_64`] call.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Fold a chunk of bytes into the running digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The digest of everything fed so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// Fixed-width lowercase-hex rendering of a 64-bit digest.
pub fn hex16(digest: u64) -> String {
    format!("{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_str(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_str("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_str("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_keys_distinct_digests() {
        let keys = [
            "cover;hypercube:10;cobra:b2;trials=64",
            "cover;hypercube:11;cobra:b2;trials=64",
            "cover;hypercube:10;cobra:b3;trials=64",
            "cover;hypercube:10;cobra:b2;trials=65",
        ];
        let digests: std::collections::HashSet<u64> = keys.iter().map(|k| fnv1a_str(k)).collect();
        assert_eq!(digests.len(), keys.len());
    }

    #[test]
    fn incremental_matches_oneshot_for_any_chunking() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let oneshot = fnv1a_64(&data);
        for chunk in [1usize, 3, 7, 64, 999, 1000] {
            let mut h = Fnv1a::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finish(), oneshot, "chunk size {chunk}");
        }
        assert_eq!(Fnv1a::new().finish(), fnv1a_64(&[]));
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex16(0), "0000000000000000");
        assert_eq!(hex16(u64::MAX), "ffffffffffffffff");
        assert_eq!(hex16(0xAB), "00000000000000ab");
    }
}
