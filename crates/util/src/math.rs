//! Small numeric helpers used throughout the workspace.

/// `ceil(log2(n))` for `n ≥ 1`; 0 for `n ∈ {0, 1}`.
///
/// The paper's lower bound on COBRA cover time is
/// `max(log2 n, Diam(G))`; this is the integer form used in reports.
pub fn log2_ceil(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// `floor(log2(n))` for `n ≥ 1`. Panics on 0.
pub fn log2_floor(n: usize) -> u32 {
    assert!(n > 0, "log2_floor(0) undefined");
    usize::BITS - 1 - n.leading_zeros()
}

/// True if `n` is a power of two (and nonzero).
pub fn is_power_of_two(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// The n-th harmonic number `H_n = 1 + 1/2 + … + 1/n` (0 for n = 0).
///
/// Shows up in the `Θ(n log n)` cover time of the random walk on `K_n`
/// (coupon collector), used as a baseline oracle in tests.
pub fn harmonic(n: usize) -> f64 {
    // Exact summation below a threshold; asymptotic expansion above it.
    if n == 0 {
        return 0.0;
    }
    if n <= 256 {
        (1..=n).map(|k| 1.0 / k as f64).sum()
    } else {
        const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
        let x = n as f64;
        x.ln() + EULER_MASCHERONI + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x)
    }
}

/// Approximate float equality with both relative and absolute tolerance.
pub fn approx_eq(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    let diff = (a - b).abs();
    diff <= abs || diff <= rel * a.abs().max(b.abs())
}

/// Arithmetic mean of a slice (NaN for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Natural log of `n` as f64, with `ln(1) = 0` and a panic on 0 to catch
/// degenerate bound evaluations early.
pub fn ln_usize(n: usize) -> f64 {
    assert!(n > 0, "ln of zero-size input");
    (n as f64).ln()
}

/// Integer power with overflow panic (used for grid sizing: side^dim).
pub fn checked_pow(base: usize, exp: u32) -> usize {
    base.checked_pow(exp)
        .expect("integer overflow in checked_pow")
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn log2_ceil_small_values() {
        assert_eq!(log2_ceil(0), 0);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn log2_floor_small_values() {
        assert_eq!(log2_floor(1), 0);
        assert_eq!(log2_floor(2), 1);
        assert_eq!(log2_floor(3), 1);
        assert_eq!(log2_floor(4), 2);
        assert_eq!(log2_floor(1023), 9);
    }

    #[test]
    fn power_of_two_detection() {
        assert!(is_power_of_two(1));
        assert!(is_power_of_two(64));
        assert!(!is_power_of_two(0));
        assert!(!is_power_of_two(65));
    }

    #[test]
    fn harmonic_matches_direct_sum() {
        assert_eq!(harmonic(0), 0.0);
        assert!(approx_eq(harmonic(1), 1.0, 1e-12, 0.0));
        assert!(approx_eq(
            harmonic(4),
            1.0 + 0.5 + 1.0 / 3.0 + 0.25,
            1e-12,
            0.0
        ));
        // Asymptotic branch vs direct sum at the crossover.
        let direct: f64 = (1..=1000).map(|k| 1.0 / k as f64).sum();
        assert!(approx_eq(harmonic(1000), direct, 1e-9, 0.0));
    }

    #[test]
    fn mean_of_empty_is_nan() {
        assert!(mean(&[]).is_nan());
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    #[should_panic(expected = "ln of zero")]
    fn ln_usize_rejects_zero() {
        ln_usize(0);
    }

    proptest! {
        #[test]
        fn log2_bounds_consistent(n in 1usize..1_000_000) {
            let c = log2_ceil(n);
            let f = log2_floor(n);
            prop_assert!(f <= c);
            prop_assert!(c - f <= 1);
            prop_assert!(2usize.pow(f) <= n);
            prop_assert!(n <= 2usize.pow(c));
            if is_power_of_two(n) { prop_assert_eq!(c, f); }
        }

        #[test]
        fn harmonic_is_monotone(n in 1usize..5000) {
            prop_assert!(harmonic(n + 1) > harmonic(n));
        }
    }
}
