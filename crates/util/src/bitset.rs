//! A fixed-capacity bit set over `u64` words.
//!
//! The simulation loops in `cobra-process` test and flip vertex membership
//! millions of times per run; this bit set keeps those operations to a
//! couple of ALU instructions with no bounds surprises. Capacity is fixed
//! at construction (the number of vertices of the graph under study).

/// Fixed-capacity bit set.
///
/// All indices must be `< len()`; out-of-range access panics (debug and
/// release), which in this workspace always indicates a vertex-id bug.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
    ones: usize,
}

const WORD_BITS: usize = 64;

impl BitSet {
    /// Creates an empty set with capacity for `len` elements.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0u64; len.div_ceil(WORD_BITS)],
            len,
            ones: 0,
        }
    }

    /// Capacity (the universe size), not the number of set bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the universe is empty (capacity zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits. O(1): maintained incrementally.
    #[inline]
    pub fn count(&self) -> usize {
        self.ones
    }

    /// True if every element of the universe is set.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.ones == self.len
    }

    /// Tests membership of `idx`.
    #[inline]
    pub fn contains(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "BitSet index {idx} out of range {}",
            self.len
        );
        (self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1 == 1
    }

    /// Inserts `idx`; returns true if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "BitSet index {idx} out of range {}",
            self.len
        );
        let w = &mut self.words[idx / WORD_BITS];
        let mask = 1u64 << (idx % WORD_BITS);
        if *w & mask == 0 {
            *w |= mask;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Sets `idx` without maintaining the `count()` accounting: a
    /// branchless load-OR-store, vs [`insert`](Self::insert)'s
    /// was-it-new test — a branch that coalescing arrival streams make
    /// unpredictable. For write-heavy sets whose owner never reads
    /// `count()` (the sharded COBRA frontier reads membership words,
    /// not cardinality). `count()` is stale until the next
    /// [`clear`](Self::clear) or [`union_with`](Self::union_with).
    #[inline]
    pub fn set_uncounted(&mut self, idx: usize) {
        assert!(
            idx < self.len,
            "BitSet index {idx} out of range {}",
            self.len
        );
        self.words[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
    }

    /// Removes `idx`; returns true if it was present.
    #[inline]
    pub fn remove(&mut self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "BitSet index {idx} out of range {}",
            self.len
        );
        let w = &mut self.words[idx / WORD_BITS];
        let mask = 1u64 << (idx % WORD_BITS);
        if *w & mask != 0 {
            *w &= !mask;
            self.ones -= 1;
            true
        } else {
            false
        }
    }

    /// Clears all bits. O(words).
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.ones = 0;
    }

    /// Clears exactly the listed indices.
    ///
    /// The round loops track which bits they set and clear only those,
    /// which beats an O(n/64) full clear when the active set is small.
    pub fn clear_indices(&mut self, indices: &[u32]) {
        for &idx in indices {
            self.remove(idx as usize);
        }
    }

    /// Iterates over set bits in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + bit)
                }
            })
        })
    }

    /// Collects the set bits as `u32` vertex ids.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().map(|i| i as u32).collect()
    }

    /// True if `self` and `other` share at least one set bit.
    ///
    /// Universes must match. Used by the duality checker to test
    /// `C ∩ A_T = ∅` without materialising the intersection.
    pub fn intersects(&self, other: &BitSet) -> bool {
        assert_eq!(self.len, other.len, "BitSet universe mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .any(|(a, b)| a & b != 0)
    }

    /// Number of elements in the intersection.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "BitSet universe mismatch");
        self.words
            .iter()
            .zip(other.words.iter())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// In-place union with `other`.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "BitSet universe mismatch");
        let mut ones = 0usize;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
            ones += a.count_ones() as usize;
        }
        self.ones = ones;
    }

    /// The backing words, least-significant bit = lowest index. Bits at
    /// positions `>= len()` are always zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// ORs `bits` into word `wi` and returns the mask of *newly set*
    /// bits. The word-level primitive of the sharded engine's merge
    /// pass (`visited |= next`, counting fresh coverage per word
    /// instead of per bit). `bits` must not address positions `>=
    /// len()`.
    #[inline]
    pub fn or_word(&mut self, wi: usize, bits: u64) -> u64 {
        debug_assert!(
            (wi + 1) * WORD_BITS <= self.len || bits >> (self.len - wi * WORD_BITS) == 0,
            "or_word sets bits beyond len {}",
            self.len
        );
        let w = &mut self.words[wi];
        let new = bits & !*w;
        *w |= bits;
        self.ones += new.count_ones() as usize;
        new
    }

    /// Builds a set from a list of indices (duplicates allowed).
    pub fn from_indices(len: usize, indices: &[u32]) -> Self {
        let mut s = BitSet::new(len);
        for &i in indices {
            s.insert(i as usize);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_empty() {
        let s = BitSet::new(130);
        assert_eq!(s.count(), 0);
        assert_eq!(s.len(), 130);
        assert!(!s.is_full());
        for i in 0..130 {
            assert!(!s.contains(i));
        }
    }

    #[test]
    fn zero_capacity_set_is_full_and_empty() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full(), "vacuously full");
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = BitSet::new(100);
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(!s.insert(63), "double insert reports false");
        assert_eq!(s.count(), 2);
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(s.remove(63));
        assert!(!s.remove(63), "double remove reports false");
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = BitSet::new(200);
        let idxs = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &idxs {
            s.insert(i);
        }
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, idxs.to_vec());
    }

    #[test]
    fn is_full_detects_saturation() {
        let mut s = BitSet::new(65);
        for i in 0..65 {
            s.insert(i);
        }
        assert!(s.is_full());
        s.remove(64);
        assert!(!s.is_full());
    }

    #[test]
    fn clear_indices_matches_full_clear() {
        let mut a = BitSet::new(300);
        let idxs: Vec<u32> = vec![3, 77, 150, 299];
        for &i in &idxs {
            a.insert(i as usize);
        }
        a.clear_indices(&idxs);
        assert_eq!(a, BitSet::new(300));
    }

    #[test]
    fn intersects_and_counts() {
        let a = BitSet::from_indices(128, &[1, 70, 100]);
        let b = BitSet::from_indices(128, &[2, 70, 101]);
        assert!(a.intersects(&b));
        assert_eq!(a.intersection_count(&b), 1);
        let c = BitSet::from_indices(128, &[3, 4]);
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection_count(&c), 0);
    }

    #[test]
    fn union_with_updates_count() {
        let mut a = BitSet::from_indices(128, &[1, 2, 3]);
        let b = BitSet::from_indices(128, &[3, 4]);
        a.union_with(&b);
        assert_eq!(a.count(), 4);
        assert!(a.contains(4));
    }

    #[test]
    fn or_word_reports_new_bits_and_maintains_count() {
        let mut s = BitSet::new(130);
        s.insert(1);
        s.insert(64);
        // Word 0: bit 1 already set, bits 0 and 3 are new.
        assert_eq!(s.or_word(0, 0b1011), 0b1001);
        assert_eq!(s.count(), 4);
        // Idempotent re-OR reports nothing new.
        assert_eq!(s.or_word(0, 0b1011), 0);
        assert_eq!(s.count(), 4);
        // Final partial word accepts in-range bits.
        assert_eq!(s.or_word(2, 0b10), 0b10);
        assert!(s.contains(129));
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![0, 1, 3, 64, 129]);
        assert_eq!(s.words()[0], 0b1011);
    }

    #[test]
    fn set_uncounted_sets_membership_and_clear_resyncs() {
        let mut s = BitSet::new(130);
        s.set_uncounted(0);
        s.set_uncounted(65);
        s.set_uncounted(65);
        assert!(s.contains(0) && s.contains(65));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 65]);
        assert_eq!(s.words()[1], 0b10);
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(!s.contains(65));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_uncounted_checks_bounds() {
        let mut s = BitSet::new(10);
        s.set_uncounted(10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = BitSet::new(10);
        s.contains(10);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let a = BitSet::new(10);
        let b = BitSet::new(11);
        a.intersects(&b);
    }

    proptest! {
        /// The bit set agrees with a reference `std` set under arbitrary
        /// insert/remove sequences.
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec((0usize..256, any::<bool>()), 0..400)) {
            let mut s = BitSet::new(256);
            let mut model = std::collections::BTreeSet::new();
            for (idx, insert) in ops {
                if insert {
                    prop_assert_eq!(s.insert(idx), model.insert(idx));
                } else {
                    prop_assert_eq!(s.remove(idx), model.remove(&idx));
                }
            }
            prop_assert_eq!(s.count(), model.len());
            let got: Vec<usize> = s.iter().collect();
            let want: Vec<usize> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }

        /// from_indices tolerates duplicates and counts distinct elements.
        #[test]
        fn from_indices_dedups(mut idxs in proptest::collection::vec(0u32..512, 0..100)) {
            let s = BitSet::from_indices(512, &idxs);
            idxs.sort_unstable();
            idxs.dedup();
            prop_assert_eq!(s.count(), idxs.len());
        }
    }
}
