//! Disjoint-set forest with union by rank and path halving.
//!
//! Used by graph generators (e.g. checking a configuration-model sample is
//! connected) and by property tests that cross-check BFS connectivity.

/// Union-find over `0..len`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(len <= u32::MAX as usize, "UnionFind capacity overflow");
        UnionFind {
            parent: (0..len as u32).collect(),
            rank: vec![0; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets remaining.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Finds the representative of `x`, halving paths as it goes.
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p] as usize;
            self.parent[x] = gp as u32;
            x = gp;
        }
    }

    /// Merges the sets containing `a` and `b`; returns true if they were
    /// previously distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi as u32;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons_at_start() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(!uf.connected(0, 1));
        assert!(uf.connected(2, 2));
    }

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.components(), 2);
        assert!(!uf.union(1, 0), "repeat union is a no-op");
        assert!(uf.union(0, 3));
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(1, 2));
    }

    #[test]
    fn chain_unions_connect_everything() {
        let n = 1000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, n - 1));
    }

    proptest! {
        /// Components always equals len minus the number of successful unions,
        /// and connectivity is an equivalence relation consistent with a
        /// reference model.
        #[test]
        fn agrees_with_reference(pairs in proptest::collection::vec((0usize..64, 0usize..64), 0..200)) {
            let mut uf = UnionFind::new(64);
            // Reference: adjacency closure via repeated relabelling.
            let mut label: Vec<usize> = (0..64).collect();
            for (a, b) in pairs {
                let merged = uf.union(a, b);
                let (la, lb) = (label[a], label[b]);
                prop_assert_eq!(merged, la != lb);
                if la != lb {
                    for l in label.iter_mut() {
                        if *l == lb { *l = la; }
                    }
                }
            }
            let distinct: std::collections::BTreeSet<usize> = label.iter().copied().collect();
            prop_assert_eq!(uf.components(), distinct.len());
            for a in 0..64 {
                for b in (a+1)..64 {
                    prop_assert_eq!(uf.connected(a, b), label[a] == label[b]);
                }
            }
        }
    }
}
