//! A tiny dependency-free JSON value: writer + recursive-descent parser.
//!
//! The workspace persists two kinds of machine-readable artifacts — the
//! `BENCH_cover.json` throughput records and the campaign result store
//! (JSONL under `campaigns/<name>/`) — and both need the same thing: a
//! small, exact JSON round trip with no external crates. This module is
//! that shared writer/reader.
//!
//! Design constraints, in order:
//!
//! * **Exact integers.** Trial samples, seeds, and transmission counts
//!   are integers and must survive a write → parse round trip
//!   bit-identically, so integers are kept as [`Json::Int`] (`i128`,
//!   wide enough for any `u64`) and never coerced through `f64`.
//! * **Round-tripping floats.** Floats are written with Rust's shortest
//!   round-trip `Display`, so `parse(write(x)) == x` for every finite
//!   `f64`.
//! * **Small surface.** Just enough accessor helpers
//!   ([`Json::get`], [`Json::as_u64`], …) for the two call sites; this
//!   is not a general serde replacement.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (`i128` covers the full `u64` range).
    Int(i128),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    /// Insertion-ordered key/value pairs (order is preserved on write).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer in range.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as an `f64` (integers widen losslessly up to 2⁵³).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(xs) => Some(xs),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the compact rendering to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let s = x.to_string();
                    out.push_str(&s);
                    // `Display` omits the decimal point for whole floats;
                    // keep the float-ness visible so parsing restores the
                    // same variant.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; null is the least-bad encoding.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value from `text` (trailing whitespace allowed,
    /// trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a JSON text failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting ceiling: far above anything our writers emit, low enough
/// that a corrupt line of 200k brackets errors instead of overflowing
/// the stack (the store contract is "unreadable lines are skipped").
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            pos: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(self.err("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest.get(1).copied().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.err(format!("bad escape \\{}", other as char)));
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err(format!("bad number {text:?}")))
        } else {
            text.parse::<i128>()
                .map(Json::Int)
                .map_err(|_| self.err(format!("bad number {text:?}")))
        }
    }

    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        Ok(())
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(xs));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

/// Builder sugar for object literals: `obj([("a", Json::Int(1))])`.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) -> Json {
        Json::parse(&v.to_string_compact()).expect("round trip parses")
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-42),
            Json::Int(u64::MAX as i128),
            Json::Float(0.25),
            Json::Float(1.0),
            Json::Float(-1e-12),
            Json::Str("he said \"hi\"\n\tdone \\".into()),
            Json::Str("unicode: Θ(n·m) ✓".into()),
        ] {
            assert_eq!(roundtrip(&v), v, "{v}");
        }
    }

    #[test]
    fn integers_stay_exact() {
        // u64::MAX survives exactly — would be lossy through f64.
        let v = Json::Int(18_446_744_073_709_551_615);
        assert_eq!(v.to_string_compact(), "18446744073709551615");
        assert_eq!(roundtrip(&v).as_u64(), Some(u64::MAX));
    }

    #[test]
    fn floats_shortest_repr_round_trips() {
        for x in [0.1, 1.0 / 3.0, 2771.3, f64::MIN_POSITIVE, 1e300] {
            let v = Json::Float(x);
            let back = roundtrip(&v);
            assert_eq!(back.as_f64(), Some(x), "float {x} drifted");
            // Whole floats keep their float-ness through the round trip.
            assert!(matches!(back, Json::Float(_)));
        }
        assert_eq!(Json::Float(1.0).to_string_compact(), "1.0");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = obj([
            ("label", Json::Str("current".into())),
            (
                "samples",
                Json::Array(vec![Json::Int(3), Json::Int(5), Json::Int(8)]),
            ),
            ("nested", obj([("x", Json::Float(0.5))])),
            ("empty_arr", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn accessors() {
        let v = obj([
            ("n", Json::Int(64)),
            ("name", Json::Str("x".into())),
            ("xs", Json::Array(vec![Json::Int(1)])),
        ]);
        assert_eq!(v.get("n").and_then(Json::as_usize), Some(64));
        assert_eq!(v.get("n").and_then(Json::as_f64), Some(64.0));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("xs").and_then(Json::as_array).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u64(), None);
    }

    #[test]
    fn parser_accepts_pretty_printed_input() {
        let text = r#"
        {
            "benchmarks": [
                {"label": "a", "rps": 1562.9},
                {"label": "b", "rps": 2771.3}
            ]
        }"#;
        let v = Json::parse(text).unwrap();
        let benches = v.get("benchmarks").and_then(Json::as_array).unwrap();
        assert_eq!(benches.len(), 2);
        assert_eq!(benches[1].get("rps").and_then(Json::as_f64), Some(2771.3));
    }

    #[test]
    fn malformed_inputs_error() {
        for s in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nan",
        ] {
            assert!(Json::parse(s).is_err(), "{s:?} should not parse");
        }
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        // A corrupt store line of 200k brackets must be a parse error,
        // not a stack overflow.
        let deep = "[".repeat(200_000);
        assert!(Json::parse(&deep).is_err());
        let deep_objs = "{\"a\":".repeat(200_000);
        assert!(Json::parse(&deep_objs).is_err());
        // Reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        assert_eq!(Json::Float(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string_compact(), "null");
    }
}
