//! Advisory cross-process file locks.
//!
//! Wraps `flock(2)` on Unix: a [`FileLock`] holds an exclusive advisory
//! lock on a named lock file for as long as the value lives. The lock is
//! released on [`Drop`] *and* automatically by the kernel if the process
//! dies, which is why this is built on `flock` rather than `O_EXCL`
//! create-files (a crashed writer must never wedge the next one).
//!
//! Two call shapes cover the workspace's needs:
//!
//! * [`FileLock::acquire`] — block until the lock is ours. Used by the
//!   graph-cache cold path: the loser of a cold-load race waits for the
//!   winner to finish writing `.csrbin`, then maps the winner's cache.
//! * [`FileLock::try_acquire`] — return `Ok(None)` immediately if another
//!   holder exists. Used by the campaign store to fail fast with a named
//!   error when a second writer attaches to the same campaign directory.
//!
//! Locks are *advisory*: they only exclude other `FileLock` users (and
//! other `flock` callers), not arbitrary file access. On non-Unix targets
//! the lock degrades to creating the lock file without kernel-level
//! exclusion — best effort, documented, and irrelevant to the CI targets.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

/// An exclusive advisory lock on a lock file, held until dropped.
#[derive(Debug)]
pub struct FileLock {
    /// Keeps the descriptor (and therefore the `flock`) alive.
    _file: File,
    path: PathBuf,
}

#[cfg(unix)]
mod sys {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const LOCK_EX: i32 = 2;
    const LOCK_NB: i32 = 4;

    extern "C" {
        fn flock(fd: i32, operation: i32) -> i32;
    }

    /// Blocking exclusive `flock`; retries on EINTR.
    pub fn lock_exclusive(file: &File) -> io::Result<()> {
        loop {
            let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX) };
            if rc == 0 {
                return Ok(());
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }

    /// Non-blocking exclusive `flock`; `Ok(false)` means "held elsewhere".
    pub fn try_lock_exclusive(file: &File) -> io::Result<bool> {
        let rc = unsafe { flock(file.as_raw_fd(), LOCK_EX | LOCK_NB) };
        if rc == 0 {
            return Ok(true);
        }
        let err = io::Error::last_os_error();
        match err.raw_os_error() {
            // EWOULDBLOCK / EAGAIN: another process holds the lock.
            Some(11) => Ok(false),
            _ if err.kind() == io::ErrorKind::WouldBlock => Ok(false),
            _ => Err(err),
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use std::fs::File;
    use std::io;

    // Best effort on non-Unix targets: the lock file exists but offers no
    // kernel-level exclusion. All supported deployment targets are Unix.
    pub fn lock_exclusive(_file: &File) -> io::Result<()> {
        Ok(())
    }

    pub fn try_lock_exclusive(_file: &File) -> io::Result<bool> {
        Ok(true)
    }
}

impl FileLock {
    fn open_lock_file(path: &Path) -> io::Result<File> {
        OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)
    }

    /// Blocks until an exclusive lock on `path` is acquired.
    ///
    /// The lock file is created if missing and never removed — removal
    /// would race a concurrent acquirer that already opened the old
    /// inode. A stale zero-byte `.lock` file is harmless.
    pub fn acquire(path: &Path) -> io::Result<FileLock> {
        let file = Self::open_lock_file(path)?;
        sys::lock_exclusive(&file)?;
        Ok(FileLock {
            _file: file,
            path: path.to_path_buf(),
        })
    }

    /// Attempts the lock without blocking; `Ok(None)` means another
    /// process (or another handle in this process) currently holds it.
    pub fn try_acquire(path: &Path) -> io::Result<Option<FileLock>> {
        let file = Self::open_lock_file(path)?;
        if sys::try_lock_exclusive(&file)? {
            Ok(Some(FileLock {
                _file: file,
                path: path.to_path_buf(),
            }))
        } else {
            Ok(None)
        }
    }

    /// The lock file path this lock holds.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

// Dropping the File releases the flock; nothing else to do. The explicit
// impl exists so the release point is greppable and documented.
impl Drop for FileLock {
    fn drop(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_lock_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cobra-lockfile-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn acquire_then_reacquire_after_drop() {
        let path = temp_lock_path("reacquire");
        let lock = FileLock::acquire(&path).unwrap();
        assert_eq!(lock.path(), path.as_path());
        drop(lock);
        let again = FileLock::acquire(&path).unwrap();
        drop(again);
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn try_acquire_fails_while_held() {
        let path = temp_lock_path("contend");
        let held = FileLock::acquire(&path).unwrap();
        // flock is per-open-file-description, so a second open in the
        // same process contends exactly like another process would.
        assert!(FileLock::try_acquire(&path).unwrap().is_none());
        drop(held);
        assert!(FileLock::try_acquire(&path).unwrap().is_some());
        let _ = std::fs::remove_file(&path);
    }

    #[cfg(unix)]
    #[test]
    fn blocking_acquire_waits_for_release() {
        let path = temp_lock_path("blocking");
        let held = FileLock::acquire(&path).unwrap();
        let path2 = path.clone();
        let waiter = std::thread::spawn(move || {
            let lock = FileLock::acquire(&path2).unwrap();
            drop(lock);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(held); // unblocks the waiter
        waiter.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}
