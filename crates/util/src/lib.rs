//! Low-level utilities shared across the COBRA reproduction workspace.
//!
//! This crate deliberately has no dependencies: it provides the small,
//! hot data structures the simulation crates lean on.
//!
//! * [`BitSet`] — a fixed-capacity bit set used for vertex membership
//!   (visited sets, infected sets, coalescing marks).
//! * [`UnionFind`] — disjoint sets, used by graph generators and
//!   connectivity checks.
//! * [`math`] — tiny numeric helpers (integer logs, harmonic numbers,
//!   approximate float comparison).
//! * [`hash`] — stable FNV-1a content hashing (campaign result keys,
//!   graph-spec digests).
//! * [`json`] — a minimal exact-round-trip JSON writer/parser shared by
//!   the benchmark records and the campaign result store.
//! * [`lockfile`] — advisory cross-process file locks (`flock(2)`),
//!   guarding the graph-cache cold path and campaign store writers.

pub mod bitset;
pub mod hash;
pub mod json;
pub mod lockfile;
pub mod math;
pub mod unionfind;

pub use bitset::BitSet;
pub use hash::{fnv1a_64, fnv1a_str, hex16, Fnv1a};
pub use json::{Json, JsonError};
pub use lockfile::FileLock;
pub use unionfind::UnionFind;
