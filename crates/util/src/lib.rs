//! Low-level utilities shared across the COBRA reproduction workspace.
//!
//! This crate deliberately has no dependencies: it provides the small,
//! hot data structures the simulation crates lean on.
//!
//! * [`BitSet`] — a fixed-capacity bit set used for vertex membership
//!   (visited sets, infected sets, coalescing marks).
//! * [`UnionFind`] — disjoint sets, used by graph generators and
//!   connectivity checks.
//! * [`math`] — tiny numeric helpers (integer logs, harmonic numbers,
//!   approximate float comparison).

pub mod bitset;
pub mod math;
pub mod unionfind;

pub use bitset::BitSet;
pub use unionfind::UnionFind;
