//! BIPS infection-time estimation and trajectories.

use cobra_graph::{Graph, VertexId};
use cobra_mc::{run_trials, RunConfig};
use cobra_process::{Bips, BipsMode, Branching, Laziness, SpreadProcess};
use cobra_stats::Summary;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for infection-time estimation.
#[derive(Debug, Clone, Copy)]
pub struct InfectionConfig {
    pub branching: Branching,
    pub laziness: Laziness,
    pub mode: BipsMode,
    pub trials: usize,
    pub master_seed: u64,
    pub threads: usize,
    pub cap: Option<usize>,
}

impl Default for InfectionConfig {
    fn default() -> Self {
        InfectionConfig {
            branching: Branching::B2,
            laziness: Laziness::None,
            mode: BipsMode::Bernoulli,
            trials: 30,
            master_seed: 0xB195,
            threads: 0,
            cap: None,
        }
    }
}

impl InfectionConfig {
    /// Sets the trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Switches to lazy picks.
    pub fn lazy(mut self) -> Self {
        self.laziness = Laziness::Half;
        self
    }

    /// Sets the branching factor.
    pub fn with_branching(mut self, b: Branching) -> Self {
        self.branching = b;
        self
    }

    /// Sets an explicit round cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    fn effective_cap(&self, g: &Graph) -> usize {
        if let Some(c) = self.cap {
            return c;
        }
        let base = crate::bounds::thm_1_1(g.n().max(2), g.m(), g.max_degree());
        let rho_penalty = match self.branching {
            Branching::Expected(rho) => 1.0 / (rho * rho),
            _ => 1.0,
        };
        (500.0 * base * rho_penalty) as usize + 10_000
    }
}

/// Outcome of infection-time trials (same censoring semantics as
/// [`crate::cover::CoverEstimate`]).
#[derive(Debug, Clone)]
pub struct InfectionEstimate {
    pub samples: Vec<usize>,
    pub censored: usize,
    pub cap: usize,
}

impl InfectionEstimate {
    /// Summary of completed trials; panics if all were censored.
    pub fn summary(&self) -> Summary {
        assert!(
            !self.samples.is_empty(),
            "all {} trials censored at cap {}",
            self.censored,
            self.cap
        );
        Summary::from_samples(&self.samples.iter().map(|&s| s as f64).collect::<Vec<_>>())
    }
}

/// Estimates `infec(source)` — rounds until `A_t = V` — by independent
/// trials.
pub fn bips_infection_samples(
    g: &Graph,
    source: VertexId,
    cfg: InfectionConfig,
) -> InfectionEstimate {
    let cap = cfg.effective_cap(g);
    let outcomes: Vec<Option<usize>> = run_trials(
        RunConfig::new(cfg.trials, cfg.master_seed).with_threads(cfg.threads),
        |seed, _| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut p = Bips::new(g, source, cfg.branching, cfg.laziness, cfg.mode);
            p.run_until_full_infection(&mut rng, cap)
        },
    );
    let mut samples = Vec::with_capacity(outcomes.len());
    let mut censored = 0;
    for o in outcomes {
        match o {
            Some(r) => samples.push(r),
            None => censored += 1,
        }
    }
    InfectionEstimate { samples, censored, cap }
}

/// Mean infection-size trajectory: entry `t` is the Monte-Carlo mean of
/// `|A_t|` over `cfg.trials` runs, for `t = 0..=rounds`.
pub fn infection_trajectory(
    g: &Graph,
    source: VertexId,
    rounds: usize,
    cfg: InfectionConfig,
) -> Vec<f64> {
    let per_trial: Vec<Vec<usize>> = run_trials(
        RunConfig::new(cfg.trials, cfg.master_seed).with_threads(cfg.threads),
        |seed, _| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut p = Bips::new(g, source, cfg.branching, cfg.laziness, cfg.mode);
            let mut sizes = Vec::with_capacity(rounds + 1);
            sizes.push(p.infected_count());
            for _ in 0..rounds {
                p.step(&mut rng);
                sizes.push(p.infected_count());
            }
            sizes
        },
    );
    let trials = per_trial.len().max(1) as f64;
    (0..=rounds)
        .map(|t| per_trial.iter().map(|s| s[t] as f64).sum::<f64>() / trials)
        .collect()
}

/// Mean infected-degree trajectory `d(A_t)` (the Theorem 1.4 quantity),
/// same conventions as [`infection_trajectory`].
pub fn degree_trajectory(
    g: &Graph,
    source: VertexId,
    rounds: usize,
    cfg: InfectionConfig,
) -> Vec<f64> {
    let per_trial: Vec<Vec<usize>> = run_trials(
        RunConfig::new(cfg.trials, cfg.master_seed).with_threads(cfg.threads),
        |seed, _| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut p = Bips::new(g, source, cfg.branching, cfg.laziness, cfg.mode);
            let mut degs = Vec::with_capacity(rounds + 1);
            degs.push(p.infected_degree());
            for _ in 0..rounds {
                p.step(&mut rng);
                degs.push(p.infected_degree());
            }
            degs
        },
    );
    let trials = per_trial.len().max(1) as f64;
    (0..=rounds)
        .map(|t| per_trial.iter().map(|s| s[t] as f64).sum::<f64>() / trials)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;

    #[test]
    fn complete_graph_infects_fast() {
        let g = generators::complete(128);
        let est = bips_infection_samples(&g, 0, InfectionConfig::default().with_trials(15));
        assert_eq!(est.censored, 0);
        assert!(est.summary().mean < 80.0);
    }

    #[test]
    fn exact_and_bernoulli_summaries_agree() {
        let g = generators::petersen();
        let mut cfg = InfectionConfig::default().with_trials(200);
        cfg.mode = BipsMode::ExactSampling;
        let a = bips_infection_samples(&g, 0, cfg).summary();
        cfg.mode = BipsMode::Bernoulli;
        cfg.master_seed ^= 0x55;
        let b = bips_infection_samples(&g, 0, cfg).summary();
        let rel = (a.mean - b.mean).abs() / a.mean;
        assert!(rel < 0.25, "modes disagree: {} vs {}", a.mean, b.mean);
    }

    #[test]
    fn trajectory_starts_at_one_and_grows_to_n() {
        let g = generators::complete(64);
        let traj = infection_trajectory(&g, 0, 40, InfectionConfig::default().with_trials(10));
        assert_eq!(traj[0], 1.0);
        assert!(traj[40] > 60.0, "mean final size {}", traj[40]);
        // Mean growth is (weakly) monotone on K_n at this scale.
        assert!(traj[5] < traj[20]);
    }

    #[test]
    fn degree_trajectory_bounded_by_2m() {
        let g = generators::torus(&[5, 5]);
        let traj = degree_trajectory(&g, 0, 30, InfectionConfig::default().with_trials(8));
        assert_eq!(traj[0], 4.0, "source degree");
        for &d in &traj {
            assert!(d <= g.degree_sum() as f64 + 1e-9);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::cycle(21);
        let a = bips_infection_samples(&g, 0, InfectionConfig::default().with_trials(6));
        let b = bips_infection_samples(&g, 0, InfectionConfig::default().with_trials(6));
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn lazy_infects_bipartite_graph() {
        let g = generators::hypercube(4);
        let est = bips_infection_samples(&g, 0, InfectionConfig::default().lazy().with_trials(8));
        assert_eq!(est.censored, 0);
    }

    #[test]
    fn rho_branching_slower_than_b2() {
        let g = generators::complete(64);
        let b2 = bips_infection_samples(&g, 0, InfectionConfig::default().with_trials(20))
            .summary()
            .mean;
        let slow = bips_infection_samples(
            &g,
            0,
            InfectionConfig::default()
                .with_branching(Branching::Expected(0.2))
                .with_trials(20),
        )
        .summary()
        .mean;
        assert!(slow > b2, "rho=0.2 ({slow}) should be slower than b=2 ({b2})");
    }
}
