//! BIPS infection-time estimation and trajectories — legacy shims.
//!
//! Full and partial infection are first-class
//! [`Objective`](crate::sim::Objective) values now (`"infection:1"`
//! and `"infection:T"` for the Theorem 1.4 partial-growth regime):
//! build a [`SimSpec`], set the objective, and
//! call [`SimSpec::measure`](crate::sim::SimSpec::measure). Like
//! [`crate::cover`], this module survives for one release as the thin
//! deprecated layer over that path — [`InfectionConfig`] is the legacy
//! configuration carrier, and every Monte-Carlo loop runs in the
//! engine. The degree trajectory shows the [`Observer`] hook in
//! action: a tiny per-round probe, no bespoke trial loop.

use crate::sim::{Estimate, SimSpec};
use cobra_graph::{Graph, VertexId};
use cobra_mc::{Observer, StopWhen, TrialOutcome};
use cobra_process::{BipsMode, Branching, Laziness, ProcessSpec, ProcessView};

/// Configuration for infection-time estimation (legacy; prefer building
/// a [`SimSpec`] directly).
#[derive(Debug, Clone, Copy)]
pub struct InfectionConfig {
    pub branching: Branching,
    pub laziness: Laziness,
    pub mode: BipsMode,
    pub trials: usize,
    pub master_seed: u64,
    pub threads: usize,
    pub cap: Option<usize>,
}

impl Default for InfectionConfig {
    fn default() -> Self {
        InfectionConfig {
            branching: Branching::B2,
            laziness: Laziness::None,
            mode: BipsMode::Bernoulli,
            trials: 30,
            master_seed: 0xB195,
            threads: 0,
            cap: None,
        }
    }
}

impl InfectionConfig {
    /// Sets the trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Switches to lazy picks.
    pub fn lazy(mut self) -> Self {
        self.laziness = Laziness::Half;
        self
    }

    /// Sets the branching factor.
    pub fn with_branching(mut self, b: Branching) -> Self {
        self.branching = b;
        self
    }

    /// Sets an explicit round cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// The process this configuration denotes.
    pub fn process_spec(&self) -> ProcessSpec {
        ProcessSpec::Bips {
            branching: self.branching,
            laziness: self.laziness,
            mode: self.mode,
        }
    }

    /// The equivalent [`SimSpec`] on `g` from the given source.
    pub fn to_sim<'g>(&self, g: &'g Graph, source: VertexId) -> SimSpec<'g> {
        let mut spec = SimSpec::new(g, self.process_spec())
            .with_start(source)
            .with_trials(self.trials)
            .with_seed(self.master_seed)
            .with_threads(self.threads);
        spec.cap = self.cap;
        spec
    }
}

/// Outcome of infection-time trials — an alias of the unified
/// [`Estimate`] (same censoring semantics as cover estimation).
pub type InfectionEstimate = Estimate;

/// Mean infection-size trajectory: entry `t` is the Monte-Carlo mean of
/// `|A_t|` over `cfg.trials` runs, for `t = 0..=rounds`.
pub fn infection_trajectory(
    g: &Graph,
    source: VertexId,
    rounds: usize,
    cfg: InfectionConfig,
) -> Vec<f64> {
    cfg.to_sim(g, source)
        .trajectory(rounds)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Observer recording `d(A_t)` after every round — the Theorem 1.4
/// quantity.
struct DegreeTrajectory<'g> {
    g: &'g Graph,
    degs: Vec<usize>,
}

impl DegreeTrajectory<'_> {
    fn record(&mut self, p: &dyn ProcessView) {
        let total: usize = p
            .reached()
            .iter()
            .map(|u| self.g.degree(u as VertexId))
            .sum();
        self.degs.push(total);
    }
}

impl Observer for DegreeTrajectory<'_> {
    type Output = Vec<usize>;
    fn on_start(&mut self, p: &dyn ProcessView) {
        self.record(p);
    }
    fn on_round(&mut self, p: &dyn ProcessView) {
        self.record(p);
    }
    fn finish(self, _outcome: TrialOutcome, _p: &dyn ProcessView) -> Vec<usize> {
        self.degs
    }
}

/// Mean infected-degree trajectory `d(A_t)` (the Theorem 1.4 quantity),
/// same conventions as [`infection_trajectory`].
pub fn degree_trajectory(
    g: &Graph,
    source: VertexId,
    rounds: usize,
    cfg: InfectionConfig,
) -> Vec<f64> {
    let spec = cfg.to_sim(g, source).with_cap(rounds);
    let per_trial: Vec<Vec<usize>> = spec
        .run_observed(StopWhen::AtCap, |_| DegreeTrajectory {
            g,
            degs: Vec::new(),
        })
        .unwrap_or_else(|e| panic!("{e}"));
    let trials = per_trial.len().max(1) as f64;
    (0..=rounds)
        .map(|t| per_trial.iter().map(|s| s[t] as f64).sum::<f64>() / trials)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;
    use cobra_process::Bips;

    fn infect(g: &Graph, source: VertexId, cfg: InfectionConfig) -> InfectionEstimate {
        cfg.to_sim(g, source).run()
    }

    #[test]
    fn complete_graph_infects_fast() {
        let g = generators::complete(128);
        let est = infect(&g, 0, InfectionConfig::default().with_trials(15));
        assert_eq!(est.censored, 0);
        assert!(est.summary().mean < 80.0);
    }

    #[test]
    fn exact_and_bernoulli_summaries_agree() {
        let g = generators::petersen();
        let mut cfg = InfectionConfig::default().with_trials(200);
        cfg.mode = BipsMode::ExactSampling;
        let a = infect(&g, 0, cfg).summary();
        cfg.mode = BipsMode::Bernoulli;
        cfg.master_seed ^= 0x55;
        let b = infect(&g, 0, cfg).summary();
        let rel = (a.mean - b.mean).abs() / a.mean;
        assert!(rel < 0.25, "modes disagree: {} vs {}", a.mean, b.mean);
    }

    #[test]
    fn trajectory_starts_at_one_and_grows_to_n() {
        let g = generators::complete(64);
        let traj = infection_trajectory(&g, 0, 40, InfectionConfig::default().with_trials(10));
        assert_eq!(traj[0], 1.0);
        assert!(traj[40] > 60.0, "mean final size {}", traj[40]);
        // Mean growth is (weakly) monotone on K_n at this scale.
        assert!(traj[5] < traj[20]);
    }

    #[test]
    fn degree_trajectory_bounded_by_2m() {
        let g = generators::torus(&[5, 5]);
        let traj = degree_trajectory(&g, 0, 30, InfectionConfig::default().with_trials(8));
        assert_eq!(traj[0], 4.0, "source degree");
        for &d in &traj {
            assert!(d <= g.degree_sum() as f64 + 1e-9);
        }
    }

    #[test]
    fn degree_trajectory_matches_direct_simulation() {
        // The observer's per-round probe must agree with what a manual
        // run of the same seeded process reports.
        use cobra_mc::trial_seed;
        use cobra_process::{ProcessState, StepCtx};
        let g = generators::petersen();
        let cfg = InfectionConfig::default().with_trials(1);
        let traj = degree_trajectory(&g, 0, 12, cfg);
        let mut ctx = StepCtx::seeded(trial_seed(cfg.master_seed, 0));
        let mut p = Bips::new(&g, 0, cfg.branching, cfg.laziness, cfg.mode);
        let mut expect = vec![p.infected_degree() as f64];
        for _ in 0..12 {
            p.step(&mut ctx);
            expect.push(p.infected_degree() as f64);
        }
        assert_eq!(traj, expect);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::cycle(21);
        let a = infect(&g, 0, InfectionConfig::default().with_trials(6));
        let b = infect(&g, 0, InfectionConfig::default().with_trials(6));
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn lazy_infects_bipartite_graph() {
        let g = generators::hypercube(4);
        let est = infect(&g, 0, InfectionConfig::default().lazy().with_trials(8));
        assert_eq!(est.censored, 0);
    }

    #[test]
    fn rho_branching_slower_than_b2() {
        let g = generators::complete(64);
        let b2 = infect(&g, 0, InfectionConfig::default().with_trials(20))
            .summary()
            .mean;
        let slow = infect(
            &g,
            0,
            InfectionConfig::default()
                .with_branching(Branching::Expected(0.2))
                .with_trials(20),
        )
        .summary()
        .mean;
        assert!(
            slow > b2,
            "rho=0.2 ({slow}) should be slower than b=2 ({b2})"
        );
    }
}
