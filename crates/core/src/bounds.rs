//! Every bound the paper states, as an explicit constant-free formula.
//!
//! These are *shapes*: the paper's constants come from union bounds and
//! are far from tight, so experiments report measured values next to the
//! bound shape evaluated with constant 1 and check ratios/exponents, not
//! absolute values.

use cobra_util::math::ln_usize;

/// Theorem 1.1 (this paper): COBRA b=2 cover time on any connected graph
/// is `O(m + dmax² log n)`.
pub fn thm_1_1(n: usize, m: usize, dmax: usize) -> f64 {
    m as f64 + (dmax * dmax) as f64 * ln_usize(n)
}

/// The `O(n² log n)` corollary of Theorem 1.1 (worst case over graphs).
pub fn thm_1_1_worst_case(n: usize) -> f64 {
    (n * n) as f64 * ln_usize(n)
}

/// Theorem 1.2 (this paper): COBRA b=2 cover time on a connected
/// `r`-regular graph with eigenvalue gap `gap = 1 − λ` is
/// `O((r/(1−λ) + r²) log n)`.
pub fn thm_1_2(n: usize, r: usize, gap: f64) -> f64 {
    assert!(gap > 0.0, "Theorem 1.2 needs a positive eigenvalue gap");
    (r as f64 / gap + (r * r) as f64) * ln_usize(n)
}

/// The gap condition of Theorems 1.2/1.5: `1 − λ > C·sqrt(log n / n)`
/// (evaluated with C = 1; callers report the margin).
pub fn thm_1_2_gap_condition(n: usize, gap: f64) -> bool {
    gap > (ln_usize(n) / n as f64).sqrt()
}

/// Cooper–Radzik–Rivera PODC 2016: `O((1/(1−λ))³ log n)` for regular
/// graphs — the bound Theorem 1.2 improves when `1 − λ = o(1/√r)`.
pub fn podc16(n: usize, gap: f64) -> f64 {
    assert!(gap > 0.0, "PODC16 bound needs a positive eigenvalue gap");
    ln_usize(n) / (gap * gap * gap)
}

/// Mitzenmacher–Rajaraman–Roche SPAA 2016: `O((r⁴/φ²) log² n)` for
/// `r`-regular graphs with conductance φ.
pub fn spaa16_regular(n: usize, r: usize, phi: f64) -> f64 {
    assert!(phi > 0.0, "SPAA16 bound needs positive conductance");
    (r as f64).powi(4) / (phi * phi) * ln_usize(n).powi(2)
}

/// SPAA 2016 general-graph bound: `O(n^{11/4} log n)` — the bound
/// Theorem 1.1 improves.
pub fn spaa16_general(n: usize) -> f64 {
    (n as f64).powf(11.0 / 4.0) * ln_usize(n)
}

/// SPAA 2016 grid bound: `O(D² n^{1/D})` for the D-dimensional grid.
pub fn spaa16_grid(n: usize, d: u32) -> f64 {
    assert!(d >= 1);
    (d * d) as f64 * (n as f64).powf(1.0 / d as f64)
}

/// Dutta et al. SPAA 2013 grid bound shape: `Õ(n^{1/D})` (poly-log
/// factor suppressed — evaluated as `n^{1/D}·log n`).
pub fn spaa13_grid(n: usize, d: u32) -> f64 {
    (n as f64).powf(1.0 / d as f64) * ln_usize(n)
}

/// Lower bound (§1): COBRA with b=2 needs at least
/// `max(log₂ n, Diam(G))` rounds to inform every vertex.
pub fn lower_bound(n: usize, diam: u32) -> f64 {
    ((n as f64).log2()).max(diam as f64)
}

/// §6: for branching factor `b = 1+ρ`, every bound above is multiplied
/// by `1/ρ²`.
pub fn rho_scaling(base_bound: f64, rho: f64) -> f64 {
    assert!(rho > 0.0 && rho <= 1.0, "rho in (0, 1]");
    base_bound / (rho * rho)
}

/// The paper's hypercube ladder (introduction): bound shapes for `Q_d`
/// (`n = 2^d`, `r = log₂ n = d`, lazy gap `1/d`, conductance `Θ(1/d)`).
/// Returns `(spaa16, podc16, this_paper)` evaluated shapes —
/// `O(log⁸ n)`, `O(log⁴ n)`, `O(log³ n)`.
pub fn hypercube_ladder(d: u32) -> (f64, f64, f64) {
    let dd = d as f64;
    let ln_n = dd * std::f64::consts::LN_2;
    let phi = 1.0 / dd;
    let gap = 1.0 / dd;
    let spaa16 = dd.powi(4) / (phi * phi) * ln_n.powi(2); // = log⁸ shape
    let podc = ln_n / (gap * gap * gap); // = log⁴ shape
    let this_paper = (dd / gap + dd * dd) * ln_n; // = log³ shape
    (spaa16, podc, this_paper)
}

/// Expected cover time of the simple random walk on `K_n` (coupon
/// collector): `(n−1)·H_{n−1}` — the `b = 1` baseline oracle.
pub fn srw_complete_graph_cover(n: usize) -> f64 {
    assert!(n >= 2);
    (n - 1) as f64 * cobra_util::math::harmonic(n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thm_1_1_dominated_by_worst_case() {
        // For any graph, m ≤ n²/2 and dmax ≤ n, so the specific bound is
        // within a constant of the n² log n worst case.
        for n in [8usize, 64, 512] {
            let worst = thm_1_1_worst_case(n);
            let specific = thm_1_1(n, n * (n - 1) / 2, n - 1);
            assert!(specific <= 2.0 * worst);
        }
    }

    #[test]
    fn thm_1_2_beats_podc16_for_small_gap() {
        // The paper: Thm 1.2 improves PODC16 when 1 − λ = o(1/√r).
        let n = 1 << 14;
        let r = 16;
        let gap = 0.001; // ≪ 1/√16 = 0.25
        assert!(thm_1_2(n, r, gap) < podc16(n, gap));
    }

    #[test]
    fn podc16_beats_thm_1_2_for_large_gap_small_r() {
        // With a constant gap and growing r the r² term loses.
        let n = 1 << 14;
        let gap = 0.5;
        let r = 1000;
        assert!(podc16(n, gap) < thm_1_2(n, r, gap));
    }

    #[test]
    fn hypercube_ladder_is_strictly_ordered() {
        for d in 3..=20u32 {
            let (spaa16, podc, this_paper) = hypercube_ladder(d);
            assert!(
                this_paper < podc && podc < spaa16,
                "ladder inverted at d={d}: {this_paper} {podc} {spaa16}"
            );
        }
    }

    #[test]
    fn hypercube_ladder_exponents() {
        // Ratios across d confirm the log-power exponents 8, 4, 3.
        let d1 = 8u32;
        let d2 = 16u32;
        let (s1, p1, t1) = hypercube_ladder(d1);
        let (s2, p2, t2) = hypercube_ladder(d2);
        let exp = |a: f64, b: f64| (b / a).ln() / ((d2 as f64) / (d1 as f64)).ln();
        assert!((exp(s1, s2) - 8.0).abs() < 1e-9);
        assert!((exp(p1, p2) - 4.0).abs() < 1e-9);
        // this-paper shape: d²·ln n = d³·ln2 exactly (the r/gap and r²
        // terms coincide on the hypercube), so exponent 3.
        assert!((exp(t1, t2) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn gap_condition_examples() {
        // Expanders (constant gap) satisfy the condition at any size.
        assert!(thm_1_2_gap_condition(1024, 0.3));
        // A vanishing gap below sqrt(log n / n) fails it.
        assert!(!thm_1_2_gap_condition(1024, 0.01));
    }

    #[test]
    fn lower_bound_switches_regimes() {
        // Complete graph: log2 n dominates (diam = 1).
        assert_eq!(lower_bound(1024, 1), 10.0);
        // Path: diameter dominates.
        assert_eq!(lower_bound(1024, 1023), 1023.0);
    }

    #[test]
    fn rho_scaling_quarters() {
        assert_eq!(rho_scaling(100.0, 0.5), 400.0);
        assert_eq!(rho_scaling(100.0, 1.0), 100.0);
    }

    #[test]
    #[should_panic(expected = "rho")]
    fn rho_scaling_rejects_zero() {
        rho_scaling(1.0, 0.0);
    }

    #[test]
    fn srw_complete_cover_matches_coupon_collector() {
        // n = 4: 3 · H_3 = 3 · 11/6 = 5.5.
        assert!((srw_complete_graph_cover(4) - 5.5).abs() < 1e-12);
    }

    #[test]
    fn grid_bounds_shapes() {
        let n = 1 << 12;
        // 2D: n^{1/2}; SPAA16 adds D² = 4.
        assert!((spaa16_grid(n, 2) - 4.0 * 64.0).abs() < 1e-9);
        assert!(spaa13_grid(n, 2) > 64.0, "poly-log factor present");
    }
}
