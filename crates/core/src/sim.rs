//! `SimSpec` — the declarative entry point for every simulation.
//!
//! Every quantitative claim in the paper has the same shape: run a
//! spreading process on a graph over many seeded trials and summarise a
//! stopping time. A [`SimSpec`] captures that shape as a value:
//!
//! ```
//! use cobra::sim::SimSpec;
//!
//! // COBRA b=2 cover time on the 6-dimensional hypercube, 20 trials.
//! let est = SimSpec::parse("hypercube:6", "cobra:b2:lazy")
//!     .unwrap()
//!     .with_trials(20)
//!     .run();
//! assert_eq!(est.censored, 0);
//! assert!(est.summary().mean >= 6.0, "cannot beat log2 n");
//! ```
//!
//! Both coordinates are data — [`GraphSpec`] and
//! [`ProcessSpec`] parse from strings — so a scenario can come from a
//! command line (`cobra-exps run --process cobra:b2 --graph
//! hypercube:10 --trials 30`), a config file, or code. Execution always
//! goes through [`cobra_mc::Engine`]: one trial loop, one seeding
//! scheme, one cap policy, identical results for any thread count.
//!
//! Programmatic callers that already hold a [`Graph`] borrow it instead
//! of re-building: `SimSpec::new(&g, spec)`.

use crate::bounds;
use cobra_graph::{Graph, GraphSpec, GraphSpecError, VertexId};
use cobra_mc::{Engine, Observer, StopWhen, Trajectory, TrialOutcome};
use cobra_process::{Branching, ProcessSpec, ProcessSpecError};
use cobra_stats::Summary;
use std::fmt;
use std::ops::Deref;

/// Where the graph of a simulation comes from.
#[derive(Debug, Clone)]
pub enum GraphSource<'g> {
    /// A graph the caller already built.
    Borrowed(&'g Graph),
    /// A family spec, materialised per run (random families derive
    /// their randomness from the sim's master seed).
    Spec(GraphSpec),
}

impl<'g> From<&'g Graph> for GraphSource<'g> {
    fn from(g: &'g Graph) -> GraphSource<'g> {
        GraphSource::Borrowed(g)
    }
}

impl From<GraphSpec> for GraphSource<'static> {
    fn from(spec: GraphSpec) -> GraphSource<'static> {
        GraphSource::Spec(spec)
    }
}

/// What the per-trial stopping time measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Rounds until every vertex is reached: cover time for COBRA and
    /// walks, infection time for BIPS, broadcast time for gossip.
    Completion,
    /// Rounds until one target vertex is reached: hitting time.
    Reach(VertexId),
}

/// Why a simulation could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    Graph(GraphSpecError),
    Process(ProcessSpecError),
    Invalid(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Graph(e) => write!(f, "{e}"),
            SimError::Process(e) => write!(f, "{e}"),
            SimError::Invalid(m) => write!(f, "invalid sim spec: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<GraphSpecError> for SimError {
    fn from(e: GraphSpecError) -> SimError {
        SimError::Graph(e)
    }
}

impl From<ProcessSpecError> for SimError {
    fn from(e: ProcessSpecError) -> SimError {
        SimError::Process(e)
    }
}

/// A borrowed or freshly built graph; derefs to [`Graph`].
pub enum MaterializedGraph<'g> {
    Borrowed(&'g Graph),
    Owned(Graph),
}

impl Deref for MaterializedGraph<'_> {
    type Target = Graph;
    fn deref(&self) -> &Graph {
        match self {
            MaterializedGraph::Borrowed(g) => g,
            MaterializedGraph::Owned(g) => g,
        }
    }
}

/// The declarative simulation spec: graph × process × start × objective
/// × (trials, seed, threads, cap).
#[derive(Debug, Clone)]
pub struct SimSpec<'g> {
    pub graph: GraphSource<'g>,
    pub process: ProcessSpec,
    /// Start set (`C_0` for COBRA; single-source processes use the
    /// first entry). Defaults to `[0]`.
    pub start: Vec<VertexId>,
    pub objective: Objective,
    /// Independent Monte-Carlo trials.
    pub trials: usize,
    /// Master seed: drives trial seeds and (for random families) graph
    /// construction.
    pub master_seed: u64,
    /// Worker threads (0 = auto). Never changes results.
    pub threads: usize,
    /// Explicit per-trial round cap; `None` derives one from the
    /// paper's bounds via [`resolve_cap`].
    pub cap: Option<usize>,
}

impl<'g> SimSpec<'g> {
    /// A spec with the workspace defaults: start `[0]`, objective
    /// completion, 30 trials, seed `0xC0B7A`, auto threads, derived cap.
    pub fn new(graph: impl Into<GraphSource<'g>>, process: ProcessSpec) -> SimSpec<'g> {
        SimSpec {
            graph: graph.into(),
            process,
            start: vec![0],
            objective: Objective::Completion,
            trials: 30,
            master_seed: 0xC0B7A,
            threads: 0,
            cap: None,
        }
    }

    /// Builds a spec entirely from strings — the CLI/config entry point.
    pub fn parse(graph: &str, process: &str) -> Result<SimSpec<'static>, SimError> {
        let graph: GraphSpec = graph.parse()?;
        let process: ProcessSpec = process.parse()?;
        Ok(SimSpec::new(graph, process))
    }

    /// Sets a single start vertex.
    pub fn with_start(mut self, v: VertexId) -> Self {
        self.start = vec![v];
        self
    }

    /// Sets the full start set.
    pub fn with_starts(mut self, starts: &[VertexId]) -> Self {
        self.start = starts.to_vec();
        self
    }

    /// Measures the hitting time of `target` instead of completion.
    pub fn reaching(mut self, target: VertexId) -> Self {
        self.objective = Objective::Reach(target);
        self
    }

    /// Sets the trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the worker thread count (1 = sequential; results never
    /// change).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets an explicit round cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Materialises the graph (no-op for borrowed graphs). Random
    /// families are seeded from the master seed, so a spec denotes one
    /// concrete graph.
    pub fn graph(&self) -> Result<MaterializedGraph<'g>, SimError> {
        match &self.graph {
            GraphSource::Borrowed(g) => Ok(MaterializedGraph::Borrowed(g)),
            GraphSource::Spec(spec) => Ok(MaterializedGraph::Owned(
                spec.build(graph_seed(self.master_seed))?,
            )),
        }
    }

    fn check(&self, g: &Graph) -> Result<(), SimError> {
        if self.start.is_empty() {
            return Err(SimError::Invalid("start set is empty".into()));
        }
        for &v in &self.start {
            if v as usize >= g.n() {
                return Err(SimError::Invalid(format!(
                    "start vertex {v} out of range for n = {}",
                    g.n()
                )));
            }
        }
        if let Objective::Reach(t) = self.objective {
            if t as usize >= g.n() {
                return Err(SimError::Invalid(format!(
                    "target vertex {t} out of range for n = {}",
                    g.n()
                )));
            }
        }
        Ok(())
    }

    /// The engine this spec resolves to, given its materialised graph.
    pub fn engine(&self, g: &Graph) -> Engine {
        Engine::new(
            self.trials,
            self.master_seed,
            resolve_cap(g, &self.process, self.cap),
        )
        .with_threads(self.threads)
    }

    /// Runs the spec through the engine and aggregates the stopping
    /// times into an [`Estimate`].
    pub fn try_run(&self) -> Result<Estimate, SimError> {
        let g = self.graph()?;
        self.check(&g)?;
        let engine = self.engine(&g);
        let stop = match self.objective {
            Objective::Completion => StopWhen::Complete,
            Objective::Reach(v) => StopWhen::Reached(v),
        };
        let outcomes = engine.run_spec_outcomes(&g, &self.process, &self.start, stop);
        Ok(Estimate::from_outcomes(&outcomes, engine.cap))
    }

    /// [`SimSpec::try_run`], panicking on an invalid spec — the
    /// ergonomic path for examples and experiments whose specs are
    /// static.
    pub fn run(&self) -> Estimate {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs with a custom per-trial [`Observer`] and an explicit stop
    /// condition — the escape hatch composite estimators (duality,
    /// trajectories) are built from. All trial-loop mechanics still
    /// live in the engine.
    pub fn run_observed<Ob, G>(
        &self,
        stop: StopWhen,
        make_observer: G,
    ) -> Result<Vec<Ob::Output>, SimError>
    where
        Ob: Observer,
        G: Fn(usize) -> Ob + Sync,
        Ob::Output: Send,
    {
        let g = self.graph()?;
        self.check(&g)?;
        let engine = self.engine(&g);
        Ok(engine.run_spec(&g, &self.process, &self.start, stop, make_observer))
    }

    /// Mean reached-set-size trajectory: entry `t` is the Monte-Carlo
    /// mean of the reached count after `t` rounds, `t = 0..=rounds`.
    pub fn trajectory(&self, rounds: usize) -> Result<Vec<f64>, SimError> {
        let capped = self.clone().with_cap(rounds);
        let per_trial = capped.run_observed(StopWhen::AtCap, |_| Trajectory::default())?;
        let trials = per_trial.len().max(1) as f64;
        Ok((0..=rounds)
            .map(|t| per_trial.iter().map(|s| s[t] as f64).sum::<f64>() / trials)
            .collect())
    }
}

/// The graph-construction seed for a master seed (kept distinct from
/// trial seeds so graph sampling never correlates with trial noise).
pub fn graph_seed(master_seed: u64) -> u64 {
    master_seed ^ 0x6AF5_EED0_6AF5_EED0
}

/// The per-trial round cap for `process` on `g`: explicit if given,
/// otherwise derived from the paper's bounds.
///
/// * Walk-like processes (`rw`, `walks:K`, `coalescing:K`, `cobra:b1`,
///   `bips:b1`) get `32·n·m + 10 000`: the expected cover time of a
///   random walk is at most `2·n·m` (Aleliunas et al.), so by Markov
///   each window of `4·n·m` rounds completes with probability ≥ ½ and
///   the cap spans 8 such windows — censoring probability at most
///   `2⁻⁸` per trial, far below the trial counts in use.
/// * Branching processes get `500×` the Theorem 1.1 bound, divided by
///   `ρ²` for fractional branching `1 + ρ` (the §6 scaling), plus
///   additive slack for small graphs.
pub fn resolve_cap(g: &Graph, process: &ProcessSpec, explicit: Option<usize>) -> usize {
    if let Some(c) = explicit {
        return c;
    }
    let n = g.n().max(2);
    if process.is_walk_like() {
        return 32 * n * g.m().max(1) + 10_000;
    }
    let base = bounds::thm_1_1(n, g.m(), g.max_degree());
    let rho_penalty = match process {
        ProcessSpec::Cobra {
            branching: Branching::Expected(rho),
            ..
        }
        | ProcessSpec::Bips {
            branching: Branching::Expected(rho),
            ..
        } => 1.0 / (rho * rho),
        _ => 1.0,
    };
    (500.0 * base * rho_penalty) as usize + 10_000
}

/// The outcome of a batch of trials: one stopping-time sample per
/// completed trial, plus censoring and resource accounting.
///
/// This is the single result type of the `SimSpec` API; the legacy
/// `CoverEstimate`/`InfectionEstimate` names are aliases of it.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Stopping time (rounds) for each trial that met the objective.
    pub samples: Vec<usize>,
    /// Trials that hit the cap without meeting the objective.
    pub censored: usize,
    /// The round cap that was in force.
    pub cap: usize,
    /// Mean transmissions sent per trial (all trials, censored
    /// included) — the resource COBRA is designed to bound.
    pub mean_transmissions: f64,
    /// Mean reached-set size at trial end (all trials).
    pub mean_reached: f64,
}

impl Estimate {
    /// Aggregates engine outcomes under the cap that produced them.
    pub fn from_outcomes(outcomes: &[TrialOutcome], cap: usize) -> Estimate {
        let mut samples = Vec::with_capacity(outcomes.len());
        let mut censored = 0usize;
        let mut tx = 0.0;
        let mut reached = 0.0;
        for o in outcomes {
            match o.rounds {
                Some(r) => samples.push(r),
                None => censored += 1,
            }
            tx += o.transmissions as f64;
            reached += o.reached as f64;
        }
        let trials = outcomes.len().max(1) as f64;
        Estimate {
            samples,
            censored,
            cap,
            mean_transmissions: tx / trials,
            mean_reached: reached / trials,
        }
    }

    /// Trials that were run.
    pub fn trials(&self) -> usize {
        self.samples.len() + self.censored
    }

    /// Fraction of trials that met the objective.
    pub fn completion_rate(&self) -> f64 {
        if self.trials() == 0 {
            return 0.0;
        }
        self.samples.len() as f64 / self.trials() as f64
    }

    /// Summary statistics of the completed trials. Panics if every
    /// trial was censored (the experiment must then raise its cap).
    pub fn summary(&self) -> Summary {
        assert!(
            !self.samples.is_empty(),
            "all {} trials censored at cap {}",
            self.censored,
            self.cap
        );
        Summary::from_samples(&self.samples_f64())
    }

    /// Samples as f64 (for fits and KS tests).
    pub fn samples_f64(&self) -> Vec<f64> {
        self.samples.iter().map(|&s| s as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;

    #[test]
    fn parse_run_covers_complete_graph() {
        let est = SimSpec::parse("complete:64", "cobra:b2")
            .unwrap()
            .with_trials(15)
            .run();
        assert_eq!(est.censored, 0);
        let s = est.summary();
        assert!(
            s.mean >= 5.0 && s.mean <= 60.0,
            "K_64 mean cover {}",
            s.mean
        );
        assert_eq!(est.mean_reached, 64.0);
        assert!(est.mean_transmissions > 0.0);
    }

    #[test]
    fn borrowed_and_spec_graphs_agree() {
        // A deterministic family gives identical results whether the
        // caller builds the graph or the spec does.
        let g = generators::torus(&[5, 5]);
        let borrowed = SimSpec::new(&g, ProcessSpec::COBRA_B2).with_trials(8).run();
        let speced = SimSpec::parse("torus:5x5", "cobra:b2")
            .unwrap()
            .with_trials(8)
            .run();
        assert_eq!(borrowed.samples, speced.samples);
    }

    #[test]
    fn threads_do_not_change_the_estimate() {
        let spec = SimSpec::parse("cycle:32", "cobra:b2")
            .unwrap()
            .with_trials(12);
        let seq = spec.clone().with_threads(1).run();
        let par = spec.clone().with_threads(8).run();
        assert_eq!(seq, par);
    }

    #[test]
    fn hitting_objective_reports_distance_consistent_times() {
        let est = SimSpec::parse("cycle:24", "cobra:b2")
            .unwrap()
            .reaching(12)
            .with_trials(10)
            .run();
        assert_eq!(est.censored, 0);
        assert!(est.samples.iter().all(|&h| h >= 12), "{:?}", est.samples);
    }

    #[test]
    fn explicit_cap_censors() {
        let est = SimSpec::parse("path:128", "cobra:b2")
            .unwrap()
            .with_trials(5)
            .with_cap(3)
            .run();
        assert_eq!(est.censored, 5);
        assert_eq!(est.completion_rate(), 0.0);
        assert!(est.samples.is_empty());
    }

    #[test]
    fn invalid_specs_surface_errors_not_panics() {
        assert!(SimSpec::parse("nope:1", "cobra:b2").is_err());
        assert!(SimSpec::parse("cycle:8", "warp:9").is_err());
        let bad_start = SimSpec::parse("cycle:8", "cobra:b2")
            .unwrap()
            .with_start(99);
        assert!(matches!(bad_start.try_run(), Err(SimError::Invalid(_))));
        let bad_target = SimSpec::parse("cycle:8", "cobra:b2").unwrap().reaching(99);
        assert!(matches!(bad_target.try_run(), Err(SimError::Invalid(_))));
    }

    #[test]
    fn walk_cap_derivation_is_nm_scaled() {
        let g = generators::cycle(24);
        let walk: ProcessSpec = "rw".parse().unwrap();
        let b2: ProcessSpec = "cobra:b2".parse().unwrap();
        let b1: ProcessSpec = "cobra:b1".parse().unwrap();
        let walk_cap = resolve_cap(&g, &walk, None);
        assert_eq!(walk_cap, 32 * 24 * 24 + 10_000);
        // b=1 COBRA *is* a random walk: identical cap derivation.
        assert_eq!(resolve_cap(&g, &b1, None), walk_cap);
        // The walk cap covers the Θ(n·m) regime...
        assert!(walk_cap >= 2 * g.n() * g.m());
        // ...and an explicit cap always wins.
        assert_eq!(resolve_cap(&g, &walk, Some(77)), 77);
        // b=2 uses the Theorem 1.1-shaped cap instead.
        let b2_cap = resolve_cap(&g, &b2, None);
        assert!(b2_cap != walk_cap);
    }

    #[test]
    fn trajectory_grows_to_n() {
        let spec = SimSpec::parse("complete:64", "bips:b2")
            .unwrap()
            .with_trials(10);
        let traj = spec.trajectory(40).unwrap();
        assert_eq!(traj.len(), 41);
        assert_eq!(traj[0], 1.0);
        assert!(traj[40] > 60.0, "mean final size {}", traj[40]);
    }

    #[test]
    fn random_graph_spec_is_reproducible() {
        let spec = SimSpec::parse("gnp:64:0.2", "cobra:b2")
            .unwrap()
            .with_trials(6);
        let a = spec.clone().run();
        let b = spec.clone().run();
        assert_eq!(a, b);
        // A different master seed samples a different graph.
        let c = spec.clone().with_seed(99).run();
        assert!(a.samples != c.samples || a.mean_transmissions != c.mean_transmissions);
    }
}
