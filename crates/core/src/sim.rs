//! `SimSpec` — the declarative entry point for every simulation.
//!
//! Every quantitative claim in the paper has the same shape: run a
//! spreading process on a graph over many seeded trials and reduce the
//! trials to an estimand. A [`SimSpec`] captures that shape as a value
//! — and the estimand itself is a value too, the [`Objective`]:
//!
//! ```
//! use cobra::sim::SimSpec;
//!
//! // COBRA b=2 cover time on the 6-dimensional hypercube, 20 trials.
//! let est = SimSpec::parse("hypercube:6", "cobra:b2:lazy")
//!     .unwrap()
//!     .with_trials(20)
//!     .run();
//! assert_eq!(est.censored, 0);
//! assert!(est.summary().mean >= 6.0, "cannot beat log2 n");
//!
//! // The same scenario measured through a parsed objective — partial
//! // infection to half the vertices, reduced without sample vectors.
//! let spec = SimSpec::parse("hypercube:6", "cobra:b2:lazy")
//!     .unwrap()
//!     .with_trials(20)
//!     .with_objective("infection:0.5".parse().unwrap());
//! let m = spec.measure().unwrap().into_stopping().unwrap();
//! assert_eq!(m.censored, 0);
//! assert!(m.mean <= est.summary().mean);
//! ```
//!
//! All three coordinates are data — [`GraphSpec`], [`ProcessSpec`], and
//! [`Objective`] parse from strings — so a scenario can come from a
//! command line (`cobra-exps run --process cobra:b2 --graph
//! hypercube:10 --objective hit:far`), a sweep axis
//! (`objective={cover,hit:far,infection:0.5}`), a config file, or code.
//! Execution always goes through [`cobra_mc::Engine`]: one trial loop,
//! one seeding scheme, one cap policy, identical results for any thread
//! count.
//!
//! # How an objective executes
//!
//! [`SimSpec::measure`] maps each [`Objective`] variant onto the three
//! engine ingredients it bundles:
//!
//! | objective | [`StopWhen`] | observer | reducer |
//! |-----------|--------------|----------|---------|
//! | `cover` | `Complete` | [`Completion`] | [`StoppingAccumulator`] (Welford + P²) |
//! | `hit:V` / `hit:far` | `Reached(v)` (far = BFS-farthest from the start set) | `Completion` | `StoppingAccumulator` |
//! | `infection:T` | `ReachedCount(⌈T·n⌉)` (`T = 1` ⇒ `Complete`) | `Completion` | `StoppingAccumulator` |
//! | `duality:h{..}` | `AtCap` at the max horizon (both sides) | horizon-disjointness probe | per-horizon two-proportion z |
//! | `trajectory` | `AtCap` | [`Trajectory`] (pre-reserved to the cap) | running per-round mean |
//!
//! The stopping objectives reduce through [`StoppingAccumulator`] — no
//! sample vector is ever materialized. `measure()` itself collects the
//! engine's fixed-size per-trial [`TrialOutcome`]s and folds them in
//! trial order; the campaign scheduler (`cobra_campaign::run_point`)
//! folds each trial the moment it finishes, which is what makes a
//! sweep point's steady-state memory O(1) in its trial count. Callers
//! that genuinely need per-trial samples (KS tests, bootstrap CIs) use
//! the legacy [`SimSpec::run`] path, which materializes an
//! [`Estimate`].
//!
//! Programmatic callers that already hold a [`Graph`] borrow it instead
//! of re-building: `SimSpec::new(&g, spec)`.

use crate::bounds;
use crate::duality::{duality_check, DualityConfig, DualityReport};
use cobra_graph::{
    with_topology, Backend, BuiltTopology, Graph, GraphShape, GraphSpec, GraphSpecError, Topology,
    VertexId,
};
use cobra_mc::{
    run_sharded_trial_probed, run_sharded_trials, run_trial_probed, trial_seed, Completion, Engine,
    Observer, StopWhen, Trajectory, TrialOutcome,
};
use cobra_obs::{Phase, PhaseTimers, RoundSink, SinkProbe, PHASES};
use cobra_process::{
    per_shard_state_bytes, Branching, ProcessSpec, ProcessSpecError, ShardedState, StepCtx,
};
use cobra_stats::streaming::StreamingSummary;
use cobra_stats::Summary;
use std::fmt;
use std::ops::Deref;

pub use cobra_mc::objective::{
    HitTarget, Objective, StoppingAccumulator, StoppingEstimate, OBJECTIVE_USAGES,
};

/// Dispatches a generic expression over the backend inside a
/// [`MaterializedTopology`] — each arm monomorphizes, so the trial loop
/// compiles to direct code per backend.
macro_rules! on_topology {
    ($topo:expr, |$g:ident| $body:expr) => {
        match $topo {
            MaterializedTopology::Borrowed(borrowed) => {
                let $g = *borrowed;
                $body
            }
            MaterializedTopology::Built(built) => with_topology!(built, |$g| $body),
        }
    };
}

/// Where the graph of a simulation comes from.
#[derive(Debug, Clone)]
pub enum GraphSource<'g> {
    /// A graph the caller already built.
    Borrowed(&'g Graph),
    /// A family spec, materialised per run (random families derive
    /// their randomness from the sim's master seed).
    Spec(GraphSpec),
}

impl<'g> From<&'g Graph> for GraphSource<'g> {
    fn from(g: &'g Graph) -> GraphSource<'g> {
        GraphSource::Borrowed(g)
    }
}

impl From<GraphSpec> for GraphSource<'static> {
    fn from(spec: GraphSpec) -> GraphSource<'static> {
        GraphSource::Spec(spec)
    }
}

/// Why a simulation could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    Graph(GraphSpecError),
    Process(ProcessSpecError),
    Invalid(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Graph(e) => write!(f, "{e}"),
            SimError::Process(e) => write!(f, "{e}"),
            SimError::Invalid(m) => write!(f, "invalid sim spec: {m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<GraphSpecError> for SimError {
    fn from(e: GraphSpecError) -> SimError {
        SimError::Graph(e)
    }
}

impl From<ProcessSpecError> for SimError {
    fn from(e: ProcessSpecError) -> SimError {
        SimError::Process(e)
    }
}

/// A borrowed or freshly built CSR graph; derefs to [`Graph`]. The
/// legacy CSR-only materialization — callers that need the
/// backend-resolved representation use [`SimSpec::topology`] instead.
pub enum MaterializedGraph<'g> {
    Borrowed(&'g Graph),
    Owned(Graph),
}

impl Deref for MaterializedGraph<'_> {
    type Target = Graph;
    fn deref(&self) -> &Graph {
        match self {
            MaterializedGraph::Borrowed(g) => g,
            MaterializedGraph::Owned(g) => g,
        }
    }
}

/// The backend-resolved graph of a [`SimSpec`]: a borrowed CSR graph,
/// or a [`BuiltTopology`] materialized from the spec under the
/// configured [`Backend`]. This is what every run path steps on.
pub enum MaterializedTopology<'g> {
    /// A caller-provided CSR graph (backend selection does not apply).
    Borrowed(&'g Graph),
    /// A spec-built backend: CSR or implicit.
    Built(BuiltTopology),
}

impl MaterializedTopology<'_> {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        on_topology!(self, |g| g.n())
    }

    /// Number of undirected edges.
    pub fn m(&self) -> usize {
        on_topology!(self, |g| g.m())
    }

    /// The `(n, m, max_degree)` triple for cap policies.
    pub fn shape(&self) -> GraphShape {
        on_topology!(self, |g| g.shape())
    }

    /// Approximate resident bytes of the representation.
    pub fn memory_bytes(&self) -> usize {
        on_topology!(self, |g| g.memory_bytes())
    }

    /// `"csr"`, `"mmap"`, or `"implicit"`.
    pub fn backend_name(&self) -> &'static str {
        match self {
            MaterializedTopology::Borrowed(_) => "csr",
            MaterializedTopology::Built(b) => b.backend_name(),
        }
    }

    /// The CSR graph, when that is the backend in use.
    pub fn as_csr(&self) -> Option<&Graph> {
        match self {
            MaterializedTopology::Borrowed(g) => Some(g),
            MaterializedTopology::Built(b) => b.as_csr(),
        }
    }
}

/// The declarative simulation spec: graph × process × start × objective
/// × (trials, seed, threads, cap).
#[derive(Debug, Clone)]
pub struct SimSpec<'g> {
    pub graph: GraphSource<'g>,
    pub process: ProcessSpec,
    /// Start set (`C_0` for COBRA; single-source processes use the
    /// first entry). Defaults to `[0]`.
    pub start: Vec<VertexId>,
    pub objective: Objective,
    /// Independent Monte-Carlo trials.
    pub trials: usize,
    /// Master seed: drives trial seeds and (for random families) graph
    /// construction.
    pub master_seed: u64,
    /// Worker threads (0 = auto). Never changes results.
    pub threads: usize,
    /// Explicit per-trial round cap; `None` derives one from the
    /// paper's bounds via [`resolve_cap`].
    pub cap: Option<usize>,
    /// Graph backend selection for spec-built graphs: implicit for the
    /// structured families by default ([`Backend::Auto`]), overridable
    /// to `csr` or `implicit`. Never changes results — backends are
    /// bit-identical — only the memory/speed profile. Ignored for
    /// borrowed graphs (already CSR).
    pub backend: Backend,
    /// Shard count for the partitioned trial engine. `1` (the default)
    /// runs the unsharded engine; `> 1` partitions vertex state across
    /// shards with per-shard RNG streams. **Part of the result's
    /// identity** (unlike `backend`): a different shard count is a
    /// different — equally valid — sample path, bit-reproducible for a
    /// fixed count regardless of thread count. Only `cobra`/`bips`
    /// processes and stopping objectives shard.
    pub shards: usize,
}

impl<'g> SimSpec<'g> {
    /// A spec with the workspace defaults: start `[0]`, objective
    /// `cover`, 30 trials, seed `0xC0B7A`, auto threads, derived cap,
    /// auto backend.
    pub fn new(graph: impl Into<GraphSource<'g>>, process: ProcessSpec) -> SimSpec<'g> {
        SimSpec {
            graph: graph.into(),
            process,
            start: vec![0],
            objective: Objective::Cover,
            trials: 30,
            master_seed: 0xC0B7A,
            threads: 0,
            cap: None,
            backend: Backend::Auto,
            shards: 1,
        }
    }

    /// Builds a spec entirely from strings — the CLI/config entry point.
    pub fn parse(graph: &str, process: &str) -> Result<SimSpec<'static>, SimError> {
        let graph: GraphSpec = graph.parse()?;
        let process: ProcessSpec = process.parse()?;
        Ok(SimSpec::new(graph, process))
    }

    /// Sets a single start vertex.
    pub fn with_start(mut self, v: VertexId) -> Self {
        self.start = vec![v];
        self
    }

    /// Sets the full start set.
    pub fn with_starts(mut self, starts: &[VertexId]) -> Self {
        self.start = starts.to_vec();
        self
    }

    /// Sets the objective (the estimand the trials reduce to).
    pub fn with_objective(mut self, objective: Objective) -> Self {
        self.objective = objective;
        self
    }

    /// Measures the hitting time of `target` instead of cover —
    /// shorthand for `with_objective(Objective::hit(target))`.
    pub fn reaching(self, target: VertexId) -> Self {
        self.with_objective(Objective::hit(target))
    }

    /// Sets the trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the worker thread count (1 = sequential; results never
    /// change).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets an explicit round cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// Overrides the graph backend (`auto`, `csr`, `implicit`).
    /// Results never change; `implicit` errors on families without an
    /// implicit representation.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Sets the shard count (1 = the unsharded engine). Unlike the
    /// backend, this changes the sample path — see [`SimSpec::shards`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Materialises the graph as CSR (no-op for borrowed graphs),
    /// ignoring the backend override — the legacy path for callers
    /// that need slice-based adjacency. Random families are seeded from
    /// the master seed, so a spec denotes one concrete graph. Prefer
    /// [`SimSpec::topology`], which honours the backend and never
    /// materialises edges for implicit families.
    pub fn graph(&self) -> Result<MaterializedGraph<'g>, SimError> {
        match &self.graph {
            GraphSource::Borrowed(g) => Ok(MaterializedGraph::Borrowed(g)),
            GraphSource::Spec(spec) => Ok(MaterializedGraph::Owned(
                spec.build(graph_seed(self.master_seed))?,
            )),
        }
    }

    /// Materialises the backend-resolved topology every run path steps
    /// on: the borrowed CSR graph as-is, or the spec built under
    /// [`SimSpec::backend`] (implicit by default for the structured
    /// families — `hypercube:24` costs bytes, not gigabytes). Random
    /// families are seeded from the master seed exactly as
    /// [`SimSpec::graph`].
    pub fn topology(&self) -> Result<MaterializedTopology<'g>, SimError> {
        match &self.graph {
            GraphSource::Borrowed(g) => Ok(MaterializedTopology::Borrowed(g)),
            GraphSource::Spec(spec) => Ok(MaterializedTopology::Built(
                spec.build_topology(graph_seed(self.master_seed), self.backend)?,
            )),
        }
    }

    /// Validates the spec against its materialised graph (any
    /// backend): non-empty in-range start set, then the objective's own
    /// termination checks (`hit:` target in range, `hit:far` reachable,
    /// threshold in range). Every run path calls this; external drivers
    /// (the CLI's `--dry-run`) can call it to reject a spec without
    /// running a round.
    pub fn check<T: Topology>(&self, g: &T) -> Result<(), SimError> {
        if self.start.is_empty() {
            return Err(SimError::Invalid("start set is empty".into()));
        }
        self.check_sharding()?;
        for &v in &self.start {
            if v as usize >= g.n() {
                return Err(SimError::Invalid(format!(
                    "start vertex {v} out of range for n = {}",
                    g.n()
                )));
            }
        }
        self.check_components(g)?;
        self.objective
            .validate(g, &self.start)
            .map_err(SimError::Invalid)
    }

    /// Rejects full-reach objectives (`cover`, `hit:far`) on a loaded
    /// graph that is disconnected, naming the component structure and
    /// the `?component=giant` fix. Scoped to `file:` specs: the
    /// synthetic families are connected by construction (or
    /// deliberately disconnected in tests), and the check costs an
    /// O(n + m) scan real-world inputs are worth but huge implicit
    /// graphs are not.
    fn check_components<T: Topology>(&self, g: &T) -> Result<(), SimError> {
        if !self.objective.requires_full_reach() {
            return Ok(());
        }
        let GraphSource::Spec(GraphSpec::File { giant: false, .. }) = &self.graph else {
            return Ok(());
        };
        let cc = cobra_graph::props::component_summary(g);
        if cc.components > 1 {
            return Err(SimError::Invalid(format!(
                "objective \"{}\" cannot terminate: the loaded graph has {} connected \
                 components (largest spans {:.1}% of {} vertices); append \
                 ?component=giant to the file: spec to restrict to the giant component",
                self.objective,
                cc.components,
                100.0 * cc.giant_fraction(),
                cc.n
            )));
        }
        Ok(())
    }

    /// Validates the shard configuration (graph-independent): positive
    /// count; for `shards > 1`, a shardable process, a single start
    /// vertex, and a stopping objective.
    fn check_sharding(&self) -> Result<(), SimError> {
        if self.shards == 0 {
            return Err(SimError::Invalid(
                "shards must be >= 1 (1 = the unsharded engine)".into(),
            ));
        }
        if self.shards == 1 {
            return Ok(());
        }
        if !self.process.is_shardable() {
            return Err(SimError::Invalid(format!(
                "process \"{}\" does not shard — the sharded engine partitions \
                 set-valued vertex state (shardable processes: cobra, bips); \
                 drop shards= or use shards=1",
                self.process
            )));
        }
        if self.start.len() != 1 {
            return Err(SimError::Invalid(format!(
                "sharded runs take a single start vertex (got {} starts)",
                self.start.len()
            )));
        }
        match self.objective {
            Objective::Cover | Objective::Hit(_) | Objective::Infection { .. } => Ok(()),
            Objective::Duality { .. } | Objective::Trajectory => Err(SimError::Invalid(format!(
                "objective \"{}\" cannot run sharded — only the stopping \
                 objectives (cover, hit:*, infection:*) do; use shards=1",
                self.objective
            ))),
        }
    }

    /// Worker threads for the sharded engine's phases (the `threads`
    /// knob with `0 = auto` resolved to the core count; never changes
    /// results).
    fn shard_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// Runs the spec's trials through the sharded engine (`shards > 1`
    /// only; `check` has already vetted the process and objective).
    /// Trials run sequentially — the shards themselves are the
    /// parallelism — under the same per-trial seed derivation as the
    /// unsharded runner.
    fn run_sharded_outcomes<T: Topology + Sync>(
        &self,
        g: &T,
        stop: StopWhen,
        cap: usize,
    ) -> Vec<TrialOutcome> {
        let kernel = self
            .process
            .shard_kernel()
            .expect("check_sharding vetted the process");
        let mut state = ShardedState::new(g, kernel, self.shards);
        run_sharded_trials(
            &mut state,
            self.trials,
            self.master_seed,
            self.start[0],
            stop,
            cap,
            self.shard_threads(),
        )
    }

    /// The engine this spec resolves to, given its materialised graph
    /// (any backend).
    pub fn engine<T: Topology>(&self, g: &T) -> Engine {
        Engine::new(
            self.trials,
            self.master_seed,
            resolve_cap(g, &self.process, self.cap),
        )
        .with_threads(self.threads)
    }

    /// Runs the spec through the engine and aggregates the stopping
    /// times into a sample-vector [`Estimate`] — the legacy
    /// materializing path, valid only for the stopping objectives
    /// (`cover`, `hit:*`, `infection:*`). Prefer [`SimSpec::measure`],
    /// which handles every objective and streams its reduction; reach
    /// for `try_run` only when downstream statistics (KS tests,
    /// bootstrap CIs) genuinely need the per-trial samples.
    pub fn try_run(&self) -> Result<Estimate, SimError> {
        let topo = self.topology()?;
        on_topology!(&topo, |g| self.try_run_on(g))
    }

    fn try_run_on<T: Topology + Sync>(&self, g: &T) -> Result<Estimate, SimError> {
        self.check(g)?;
        if !self.objective.is_sweepable() {
            return Err(SimError::Invalid(format!(
                "objective \"{}\" has no sample-vector estimate; use SimSpec::measure()",
                self.objective
            )));
        }
        let engine = self.engine(g);
        let stop = self
            .objective
            .stop_when(g, &self.start)
            .map_err(SimError::Invalid)?;
        let outcomes = if self.shards > 1 {
            self.run_sharded_outcomes(g, stop, engine.cap)
        } else {
            engine.run_spec_outcomes(g, &self.process, &self.start, stop)
        };
        Ok(Estimate::from_outcomes(&outcomes, engine.cap))
    }

    /// [`SimSpec::try_run`], panicking on an invalid spec — the
    /// ergonomic path for examples and experiments whose specs are
    /// static.
    pub fn run(&self) -> Estimate {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The unified measurement path: resolves the objective to its
    /// stop condition, observer, and reducer (see the module docs for
    /// the mapping) and returns the objective-shaped [`Measurement`].
    ///
    /// Stopping objectives fold their trials through a streaming
    /// [`StoppingAccumulator`] in trial order — bit-identical to the
    /// sample-vector path folded through the same reducer, whatever the
    /// thread count.
    pub fn measure(&self) -> Result<Measurement, SimError> {
        let topo = self.topology()?;
        on_topology!(&topo, |g| self.measure_on(g))
    }

    fn measure_on<T: Topology + Sync>(&self, g: &T) -> Result<Measurement, SimError> {
        self.check(g)?;
        match &self.objective {
            Objective::Cover | Objective::Hit(_) | Objective::Infection { .. } => {
                let engine = self.engine(g);
                let stop = self
                    .objective
                    .stop_when(g, &self.start)
                    .map_err(SimError::Invalid)?;
                let outcomes = if self.shards > 1 {
                    self.run_sharded_outcomes(g, stop, engine.cap)
                } else {
                    engine.run_spec_outcomes(g, &self.process, &self.start, stop)
                };
                let mut acc = StoppingAccumulator::new();
                for o in &outcomes {
                    acc.push(o);
                }
                Ok(Measurement::Stopping(acc.finish(engine.cap)))
            }
            Objective::Duality { horizons } => {
                // The duality identity relates a COBRA hitting time to a
                // BIPS infection overlap: the spec contributes its
                // branching factor (from a cobra/bips process), its
                // start set as `C`, and the BFS-farthest vertex as the
                // source `v`.
                let branching = match &self.process {
                    ProcessSpec::Cobra { branching, .. } | ProcessSpec::Bips { branching, .. } => {
                        *branching
                    }
                    other => {
                        return Err(SimError::Invalid(format!(
                            "objective \"{}\" needs a cobra or bips process \
                             (got \"{other}\"): the duality identity is about \
                             branching processes",
                            self.objective
                        )));
                    }
                };
                let source = self
                    .objective
                    .resolve_hit(g, &self.start, HitTarget::Far)
                    .map_err(SimError::Invalid)?;
                let cfg = DualityConfig {
                    branching,
                    trials: self.trials,
                    horizons: horizons.clone(),
                    master_seed: self.master_seed,
                    threads: self.threads,
                };
                Ok(Measurement::Duality(duality_check(
                    g,
                    source,
                    &self.start,
                    &cfg,
                )))
            }
            Objective::Trajectory => {
                let rounds = self.cap.unwrap_or_else(|| {
                    // A full derived cap makes an absurdly long curve;
                    // default to something trajectory-sized instead.
                    4 * g.n().max(2)
                });
                Ok(Measurement::Trajectory(TrajectoryEstimate {
                    mean_sizes: self.trajectory_with(g, rounds),
                    trials: self.trials,
                }))
            }
        }
    }

    /// [`SimSpec::measure`] with telemetry attached: every executed
    /// round is delivered to `sink` as a per-round record (frontier
    /// size, newly covered vertices, transmissions, coalesced picks,
    /// and — sharded — per-shard outbox traffic), followed by one
    /// totals record per trial. With `time_phases`, kernels also lap
    /// their round phases into log2 histograms, surfaced per trial via
    /// [`RoundSink::on_trial_phases`] and returned aggregated.
    ///
    /// Probes are observe-only (they never draw from the trial RNG and
    /// run after each `step` commits), so the returned [`Measurement`]
    /// is **bit-identical** to [`SimSpec::measure`] — pinned across all
    /// golden families by `tests/probe_identity.rs`. Trials run
    /// sequentially (one dynamic sink), so tracing trades wall-clock
    /// for visibility; only the stopping objectives (`cover`, `hit:*`,
    /// `infection:*`) can be traced.
    pub fn measure_traced(
        &self,
        sink: &mut dyn RoundSink,
        time_phases: bool,
    ) -> Result<(Measurement, Option<Box<PhaseTimers>>), SimError> {
        let topo = self.topology()?;
        on_topology!(&topo, |g| self.measure_traced_on(g, sink, time_phases))
    }

    fn measure_traced_on<T: Topology + Sync>(
        &self,
        g: &T,
        sink: &mut dyn RoundSink,
        time_phases: bool,
    ) -> Result<(Measurement, Option<Box<PhaseTimers>>), SimError> {
        self.check(g)?;
        match self.objective {
            Objective::Cover | Objective::Hit(_) | Objective::Infection { .. } => {}
            Objective::Duality { .. } | Objective::Trajectory => {
                return Err(SimError::Invalid(format!(
                    "objective \"{}\" cannot be traced — per-round probes attach \
                     to the stopping objectives (cover, hit:*, infection:*)",
                    self.objective
                )));
            }
        }
        let engine = self.engine(g);
        let stop = self
            .objective
            .stop_when(g, &self.start)
            .map_err(SimError::Invalid)?;
        let mut acc = StoppingAccumulator::new();
        let timers = if self.shards > 1 {
            let kernel = self
                .process
                .shard_kernel()
                .expect("check_sharding vetted the process");
            let mut state = ShardedState::new(g, kernel, self.shards);
            state.instrument(time_phases);
            let threads = self.shard_threads();
            for i in 0..self.trials {
                let before = state.timers().map(PhaseTimers::sums);
                let outcome = {
                    let mut probe = SinkProbe::new(i, sink);
                    run_sharded_trial_probed(
                        &mut state,
                        trial_seed(self.master_seed, i as u64),
                        self.start[0],
                        stop,
                        engine.cap,
                        threads,
                        &mut probe,
                    )
                };
                acc.push(&outcome);
                if let (Some(before), Some(t)) = (before, state.timers()) {
                    sink.on_trial_phases(i, &phase_deltas(before, t));
                }
            }
            state.take_timers()
        } else {
            // Mirrors `Engine::run_spec_outcomes` exactly — build once,
            // reseed + reset per trial — so outcomes are bit-identical
            // to the parallel engine (trial seeds never depend on the
            // worker layout).
            let mut process = self.process.build(g, &self.start);
            let mut ctx = StepCtx::new();
            if time_phases {
                ctx.timers = Some(Box::default());
            }
            for i in 0..self.trials {
                ctx.reseed(trial_seed(self.master_seed, i as u64));
                process.reset(g, &self.start);
                let before = ctx.timers.as_deref().map(PhaseTimers::sums);
                let outcome = {
                    let mut probe = SinkProbe::new(i, sink);
                    run_trial_probed(
                        &mut process,
                        &mut ctx,
                        stop,
                        engine.cap,
                        Completion,
                        &mut probe,
                    )
                };
                acc.push(&outcome);
                if let (Some(before), Some(t)) = (before, ctx.timers.as_deref()) {
                    sink.on_trial_phases(i, &phase_deltas(before, t));
                }
            }
            ctx.timers.take()
        };
        Ok((Measurement::Stopping(acc.finish(engine.cap)), timers))
    }

    /// Resolves everything a trial would see — backend, sizes, stop
    /// condition, cap — without running a round, rejecting specs that
    /// cannot terminate. The `--dry-run`/`--verbose` CLI paths print
    /// this; for implicit backends it never materialises an edge, so a
    /// `hypercube:24` dry run costs bytes.
    pub fn resolve(&self) -> Result<ResolvedRun, SimError> {
        let topo = self.topology()?;
        on_topology!(&topo, |g| {
            self.check(g)?;
            let engine = self.engine(g);
            let stop = self
                .objective
                .stop_when(g, &self.start)
                .map_err(SimError::Invalid)?;
            Ok(ResolvedRun {
                n: g.n(),
                m: g.m(),
                backend: topo.backend_name(),
                graph_bytes: g.memory_bytes(),
                stop,
                cap: engine.cap,
                explicit_cap: self.cap.is_some(),
                shards: self.shards,
                shard_state_bytes: per_shard_state_bytes(g.n(), self.shards),
            })
        })
    }

    /// Runs with a custom per-trial [`Observer`] and an explicit stop
    /// condition — the escape hatch composite estimators (duality,
    /// trajectories) are built from. All trial-loop mechanics still
    /// live in the engine.
    pub fn run_observed<Ob, G>(
        &self,
        stop: StopWhen,
        make_observer: G,
    ) -> Result<Vec<Ob::Output>, SimError>
    where
        Ob: Observer,
        G: Fn(usize) -> Ob + Sync,
        Ob::Output: Send,
    {
        let topo = self.topology()?;
        on_topology!(&topo, |g| {
            self.check(g)?;
            let engine = self.engine(g);
            Ok(engine.run_spec(g, &self.process, &self.start, stop, make_observer))
        })
    }

    /// Mean reached-set-size trajectory: entry `t` is the Monte-Carlo
    /// mean of the reached count after `t` rounds, `t = 0..=rounds`.
    pub fn trajectory(&self, rounds: usize) -> Result<Vec<f64>, SimError> {
        let topo = self.topology()?;
        on_topology!(&topo, |g| {
            self.check(g)?;
            Ok(self.trajectory_with(g, rounds))
        })
    }

    /// [`SimSpec::trajectory`] against an already-materialised,
    /// already-checked graph (so `measure()` never builds the graph
    /// twice).
    fn trajectory_with<T: Topology + Sync>(&self, g: &T, rounds: usize) -> Vec<f64> {
        let engine = Engine::new(self.trials, self.master_seed, rounds).with_threads(self.threads);
        let per_trial = engine.run_spec(g, &self.process, &self.start, StopWhen::AtCap, |_| {
            Trajectory::with_capacity(rounds)
        });
        let trials = per_trial.len().max(1) as f64;
        (0..=rounds)
            .map(|t| per_trial.iter().map(|s| s[t] as f64).sum::<f64>() / trials)
            .collect()
    }
}

/// The fully-resolved scenario of a [`SimSpec`] — what a dry run
/// prints (see [`SimSpec::resolve`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedRun {
    /// Vertices of the materialised graph.
    pub n: usize,
    /// Undirected edges.
    pub m: usize,
    /// `"csr"`, `"mmap"`, or `"implicit"`.
    pub backend: &'static str,
    /// Approximate resident bytes of the graph representation.
    pub graph_bytes: usize,
    /// The resolved engine stop condition.
    pub stop: StopWhen,
    /// The per-trial round cap in force.
    pub cap: usize,
    /// True when the cap was given explicitly (vs derived from the
    /// paper's bounds).
    pub explicit_cap: bool,
    /// Shard count of the partitioned engine (1 = unsharded).
    pub shards: usize,
    /// Resident vertex-state bytes *per shard* (the three local
    /// bitsets: visited/infected, frontier, next) — what to budget
    /// alongside [`ResolvedRun::graph_bytes`] when planning a
    /// `hypercube:30`-scale run.
    pub shard_state_bytes: usize,
}

/// The objective-shaped result of [`SimSpec::measure`].
#[derive(Debug, Clone, PartialEq)]
pub enum Measurement {
    /// `cover` / `hit:*` / `infection:*`: a streamed stopping-time
    /// summary (no sample vector).
    Stopping(StoppingEstimate),
    /// `duality:h{..}`: the two-sided Theorem 1.3 comparison.
    Duality(DualityReport),
    /// `trajectory`: the mean reached-set-size curve.
    Trajectory(TrajectoryEstimate),
}

impl Measurement {
    /// The stopping-time summary, if this measurement has one.
    pub fn into_stopping(self) -> Option<StoppingEstimate> {
        match self {
            Measurement::Stopping(est) => Some(est),
            _ => None,
        }
    }

    /// The duality report, if this measurement has one.
    pub fn into_duality(self) -> Option<DualityReport> {
        match self {
            Measurement::Duality(report) => Some(report),
            _ => None,
        }
    }

    /// The trajectory estimate, if this measurement has one.
    pub fn into_trajectory(self) -> Option<TrajectoryEstimate> {
        match self {
            Measurement::Trajectory(traj) => Some(traj),
            _ => None,
        }
    }
}

/// Mean reached-set-size curve over the round budget.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEstimate {
    /// Entry `t` is the Monte-Carlo mean reached count after `t`
    /// rounds.
    pub mean_sizes: Vec<f64>,
    /// Trials averaged.
    pub trials: usize,
}

/// The graph-construction seed for a master seed (kept distinct from
/// trial seeds so graph sampling never correlates with trial noise).
pub fn graph_seed(master_seed: u64) -> u64 {
    master_seed ^ 0x6AF5_EED0_6AF5_EED0
}

/// Per-phase nanoseconds accumulated since the `before` snapshot —
/// the per-trial split `measure_traced` hands to
/// [`RoundSink::on_trial_phases`]. Only phases that advanced appear.
fn phase_deltas(before: [u64; PHASES], timers: &PhaseTimers) -> Vec<(Phase, u64)> {
    let after = timers.sums();
    Phase::ALL
        .iter()
        .enumerate()
        .filter(|&(i, _)| after[i] > before[i])
        .map(|(i, &p)| (p, after[i] - before[i]))
        .collect()
}

/// The per-trial round cap for `process` on `g`: explicit if given,
/// otherwise derived from the paper's bounds.
///
/// * Walk-like processes (`rw`, `walks:K`, `coalescing:K`, `cobra:b1`,
///   `bips:b1`) get `32·n·m + 10 000`: the expected cover time of a
///   random walk is at most `2·n·m` (Aleliunas et al.), so by Markov
///   each window of `4·n·m` rounds completes with probability ≥ ½ and
///   the cap spans 8 such windows — censoring probability at most
///   `2⁻⁸` per trial, far below the trial counts in use.
/// * Branching processes get `500×` the Theorem 1.1 bound, divided by
///   `ρ²` for fractional branching `1 + ρ` (the §6 scaling), plus
///   additive slack for small graphs.
pub fn resolve_cap<T: Topology>(g: &T, process: &ProcessSpec, explicit: Option<usize>) -> usize {
    resolve_cap_shape(g.shape(), process, explicit)
}

/// [`resolve_cap`] from a bare [`GraphShape`] — the form cap policies
/// that cannot be generic (e.g. the campaign's `dyn Fn` policy slot)
/// consume.
pub fn resolve_cap_shape(
    shape: GraphShape,
    process: &ProcessSpec,
    explicit: Option<usize>,
) -> usize {
    if let Some(c) = explicit {
        return c;
    }
    let n = shape.n.max(2);
    if process.is_walk_like() {
        return 32 * n * shape.m.max(1) + 10_000;
    }
    let base = bounds::thm_1_1(n, shape.m, shape.max_degree);
    let rho_penalty = match process {
        ProcessSpec::Cobra {
            branching: Branching::Expected(rho),
            ..
        }
        | ProcessSpec::Bips {
            branching: Branching::Expected(rho),
            ..
        } => 1.0 / (rho * rho),
        _ => 1.0,
    };
    (500.0 * base * rho_penalty) as usize + 10_000
}

/// The outcome of a batch of trials: one stopping-time sample per
/// completed trial, plus censoring and resource accounting.
///
/// This is the single result type of the `SimSpec` API; the legacy
/// `CoverEstimate`/`InfectionEstimate` names are aliases of it.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Stopping time (rounds) for each trial that met the objective.
    pub samples: Vec<usize>,
    /// Trials that hit the cap without meeting the objective.
    pub censored: usize,
    /// The round cap that was in force.
    pub cap: usize,
    /// Mean transmissions sent per trial (all trials, censored
    /// included) — the resource COBRA is designed to bound.
    pub mean_transmissions: f64,
    /// Mean reached-set size at trial end (all trials).
    pub mean_reached: f64,
}

impl Estimate {
    /// Aggregates engine outcomes under the cap that produced them.
    pub fn from_outcomes(outcomes: &[TrialOutcome], cap: usize) -> Estimate {
        let mut samples = Vec::with_capacity(outcomes.len());
        let mut censored = 0usize;
        let mut tx = 0.0;
        let mut reached = 0.0;
        for o in outcomes {
            match o.rounds {
                Some(r) => samples.push(r),
                None => censored += 1,
            }
            tx += o.transmissions as f64;
            reached += o.reached as f64;
        }
        let trials = outcomes.len().max(1) as f64;
        Estimate {
            samples,
            censored,
            cap,
            mean_transmissions: tx / trials,
            mean_reached: reached / trials,
        }
    }

    /// Trials that were run.
    pub fn trials(&self) -> usize {
        self.samples.len() + self.censored
    }

    /// Fraction of trials that met the objective.
    pub fn completion_rate(&self) -> f64 {
        if self.trials() == 0 {
            return 0.0;
        }
        self.samples.len() as f64 / self.trials() as f64
    }

    /// Summary statistics of the completed trials. Panics if every
    /// trial was censored (the experiment must then raise its cap).
    pub fn summary(&self) -> Summary {
        assert!(
            !self.samples.is_empty(),
            "all {} trials censored at cap {}",
            self.censored,
            self.cap
        );
        Summary::from_samples(&self.samples_f64())
    }

    /// Samples as f64 (for fits and KS tests).
    pub fn samples_f64(&self) -> Vec<f64> {
        self.samples.iter().map(|&s| s as f64).collect()
    }

    /// Folds this materialized estimate through the same streaming
    /// reducer the objective path uses, in the same (trial) order — the
    /// bridge the equivalence tests pin: `measure()` on a stopping
    /// objective must equal `run()` pushed through this.
    pub fn to_streamed(&self) -> StoppingEstimate {
        let mut summary = StreamingSummary::new();
        for &s in &self.samples {
            summary.push(s as f64);
        }
        StoppingEstimate::from_fold(
            &summary,
            self.trials(),
            self.censored,
            self.cap,
            self.mean_transmissions,
            self.mean_reached,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;
    use proptest::prelude::*;

    #[test]
    fn parse_run_covers_complete_graph() {
        let est = SimSpec::parse("complete:64", "cobra:b2")
            .unwrap()
            .with_trials(15)
            .run();
        assert_eq!(est.censored, 0);
        let s = est.summary();
        assert!(
            s.mean >= 5.0 && s.mean <= 60.0,
            "K_64 mean cover {}",
            s.mean
        );
        assert_eq!(est.mean_reached, 64.0);
        assert!(est.mean_transmissions > 0.0);
    }

    #[test]
    fn borrowed_and_spec_graphs_agree() {
        // A deterministic family gives identical results whether the
        // caller builds the graph or the spec does.
        let g = generators::torus(&[5, 5]);
        let borrowed = SimSpec::new(&g, ProcessSpec::COBRA_B2).with_trials(8).run();
        let speced = SimSpec::parse("torus:5x5", "cobra:b2")
            .unwrap()
            .with_trials(8)
            .run();
        assert_eq!(borrowed.samples, speced.samples);
    }

    #[test]
    fn threads_do_not_change_the_estimate() {
        let spec = SimSpec::parse("cycle:32", "cobra:b2")
            .unwrap()
            .with_trials(12);
        let seq = spec.clone().with_threads(1).run();
        let par = spec.clone().with_threads(8).run();
        assert_eq!(seq, par);
    }

    #[test]
    fn hitting_objective_reports_distance_consistent_times() {
        let est = SimSpec::parse("cycle:24", "cobra:b2")
            .unwrap()
            .reaching(12)
            .with_trials(10)
            .run();
        assert_eq!(est.censored, 0);
        assert!(est.samples.iter().all(|&h| h >= 12), "{:?}", est.samples);
    }

    #[test]
    fn explicit_cap_censors() {
        let est = SimSpec::parse("path:128", "cobra:b2")
            .unwrap()
            .with_trials(5)
            .with_cap(3)
            .run();
        assert_eq!(est.censored, 5);
        assert_eq!(est.completion_rate(), 0.0);
        assert!(est.samples.is_empty());
    }

    #[test]
    fn invalid_specs_surface_errors_not_panics() {
        assert!(SimSpec::parse("nope:1", "cobra:b2").is_err());
        assert!(SimSpec::parse("cycle:8", "warp:9").is_err());
        let bad_start = SimSpec::parse("cycle:8", "cobra:b2")
            .unwrap()
            .with_start(99);
        assert!(matches!(bad_start.try_run(), Err(SimError::Invalid(_))));
        let bad_target = SimSpec::parse("cycle:8", "cobra:b2").unwrap().reaching(99);
        assert!(matches!(bad_target.try_run(), Err(SimError::Invalid(_))));
    }

    #[test]
    fn walk_cap_derivation_is_nm_scaled() {
        let g = generators::cycle(24);
        let walk: ProcessSpec = "rw".parse().unwrap();
        let b2: ProcessSpec = "cobra:b2".parse().unwrap();
        let b1: ProcessSpec = "cobra:b1".parse().unwrap();
        let walk_cap = resolve_cap(&g, &walk, None);
        assert_eq!(walk_cap, 32 * 24 * 24 + 10_000);
        // b=1 COBRA *is* a random walk: identical cap derivation.
        assert_eq!(resolve_cap(&g, &b1, None), walk_cap);
        // The walk cap covers the Θ(n·m) regime...
        assert!(walk_cap >= 2 * g.n() * g.m());
        // ...and an explicit cap always wins.
        assert_eq!(resolve_cap(&g, &walk, Some(77)), 77);
        // b=2 uses the Theorem 1.1-shaped cap instead.
        let b2_cap = resolve_cap(&g, &b2, None);
        assert!(b2_cap != walk_cap);
    }

    #[test]
    fn trajectory_grows_to_n() {
        let spec = SimSpec::parse("complete:64", "bips:b2")
            .unwrap()
            .with_trials(10);
        let traj = spec.trajectory(40).unwrap();
        assert_eq!(traj.len(), 41);
        assert_eq!(traj[0], 1.0);
        assert!(traj[40] > 60.0, "mean final size {}", traj[40]);
    }

    #[test]
    fn measure_streams_the_same_fold_as_the_sample_path() {
        for objective in ["cover", "hit:far", "hit:12", "infection:0.5", "infection:1"] {
            let spec = SimSpec::parse("cycle:24", "cobra:b2")
                .unwrap()
                .with_trials(12)
                .with_objective(objective.parse().unwrap());
            let streamed = spec.measure().unwrap().into_stopping().unwrap();
            let materialized = spec.run().to_streamed();
            assert_eq!(streamed, materialized, "{objective}: paths diverged");
        }
    }

    #[test]
    fn infection_one_is_cover_bit_for_bit() {
        let base = SimSpec::parse("hypercube:5", "bips:b2")
            .unwrap()
            .with_trials(10);
        let cover = base.clone().measure().unwrap().into_stopping().unwrap();
        let full = base
            .clone()
            .with_objective("infection:1".parse().unwrap())
            .measure()
            .unwrap()
            .into_stopping()
            .unwrap();
        assert_eq!(cover, full);
    }

    #[test]
    fn infection_threshold_orders_means() {
        let spec = |t: &str| {
            SimSpec::parse("complete:64", "bips:b2")
                .unwrap()
                .with_trials(12)
                .with_objective(t.parse().unwrap())
                .measure()
                .unwrap()
                .into_stopping()
                .unwrap()
        };
        let quarter = spec("infection:0.25");
        let half = spec("infection:0.5");
        let full = spec("infection:1");
        assert!(quarter.mean <= half.mean && half.mean <= full.mean);
        assert_eq!(full.censored, 0);
    }

    #[test]
    fn hit_far_resolves_to_the_bfs_farthest_vertex() {
        // On a path from vertex 0, `hit:far` is the other endpoint.
        let far = SimSpec::parse("path:32", "cobra:b2")
            .unwrap()
            .with_trials(6)
            .with_objective("hit:far".parse().unwrap())
            .measure()
            .unwrap()
            .into_stopping()
            .unwrap();
        let explicit = SimSpec::parse("path:32", "cobra:b2")
            .unwrap()
            .with_trials(6)
            .reaching(31)
            .measure()
            .unwrap()
            .into_stopping()
            .unwrap();
        assert_eq!(far, explicit);
        assert!(far.min >= 31.0, "path distance is a hard lower bound");
    }

    #[test]
    fn duality_objective_matches_the_direct_check() {
        use crate::duality::{duality_check, DualityConfig};
        let spec = SimSpec::parse("petersen", "cobra:b2")
            .unwrap()
            .with_start(3)
            .with_trials(400)
            .with_objective("duality:h{0,1,2,3}".parse().unwrap());
        let via_objective = spec.measure().unwrap().into_duality().unwrap();
        let g = generators::petersen();
        let (source, _) = cobra_graph::props::farthest_vertex(&g, &[3]).unwrap();
        let direct = duality_check(
            &g,
            source,
            &[3],
            &DualityConfig {
                branching: cobra_process::Branching::B2,
                trials: 400,
                horizons: vec![0, 1, 2, 3],
                master_seed: 0xC0B7A,
                threads: 0,
            },
        );
        assert_eq!(via_objective.trials, direct.trials);
        for (a, b) in via_objective.rows.iter().zip(&direct.rows) {
            assert_eq!(
                (a.t, a.cobra_side, a.bips_side),
                (b.t, b.cobra_side, b.bips_side)
            );
        }
        assert!(via_objective.max_abs_z() < 4.5);
    }

    #[test]
    fn duality_objective_requires_a_branching_process() {
        let err = SimSpec::parse("petersen", "rw")
            .unwrap()
            .with_objective("duality:h{2}".parse().unwrap())
            .measure()
            .unwrap_err();
        assert!(
            err.to_string().contains("cobra or bips"),
            "unhelpful error: {err}"
        );
    }

    #[test]
    fn trajectory_objective_reports_the_mean_curve() {
        let spec = SimSpec::parse("complete:64", "bips:b2")
            .unwrap()
            .with_trials(10)
            .with_cap(40)
            .with_objective(Objective::Trajectory);
        let traj = spec.measure().unwrap().into_trajectory().unwrap();
        assert_eq!(traj.trials, 10);
        assert_eq!(traj.mean_sizes, spec.trajectory(40).unwrap());
        assert_eq!(traj.mean_sizes[0], 1.0);
    }

    #[test]
    fn non_stopping_objectives_reject_the_sample_path() {
        let err = SimSpec::parse("petersen", "cobra:b2")
            .unwrap()
            .with_objective(Objective::Trajectory)
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("measure"), "{err}");
    }

    proptest! {
        /// `FromStr`/`Display` is an exact round trip over every
        /// objective variant.
        #[test]
        fn objective_display_parse_round_trips(
            variant in 0usize..6,
            v in 0u32..10_000,
            threshold_milli in 1u32..1001,
            horizons in proptest::collection::vec(0usize..10_000, 1..6),
        ) {
            let objective = match variant {
                0 => Objective::Cover,
                1 => Objective::hit(v),
                2 => Objective::Hit(HitTarget::Far),
                3 => Objective::Infection { threshold: threshold_milli as f64 / 1000.0 },
                4 => {
                    let mut hs = horizons.clone();
                    hs.sort_unstable();
                    Objective::Duality { horizons: hs }
                }
                _ => Objective::Trajectory,
            };
            let text = objective.to_string();
            let back: Objective = text.parse().expect("canonical display parses");
            prop_assert_eq!(&back, &objective, "{} did not round-trip", text);
            prop_assert_eq!(back.to_string(), text);
        }
    }

    #[test]
    fn sharded_runs_are_reproducible_and_thread_invariant() {
        let spec = SimSpec::parse("hypercube:8", "cobra:b2")
            .unwrap()
            .with_trials(6)
            .with_shards(4);
        let seq = spec.clone().with_threads(1).run();
        let par = spec.clone().with_threads(8).run();
        assert_eq!(seq, par, "thread count changed a sharded result");
        let again = spec.clone().with_threads(1).run();
        assert_eq!(seq, again, "sharded rerun diverged");
        assert_eq!(seq.censored, 0);
        assert_eq!(seq.mean_reached, 256.0);
        // The streaming measure() path agrees with the sample path.
        let streamed = spec.measure().unwrap().into_stopping().unwrap();
        assert_eq!(streamed, seq.to_streamed());
    }

    #[test]
    fn shard_count_changes_the_sample_path() {
        let run = |shards| {
            SimSpec::parse("hypercube:9", "cobra:b2")
                .unwrap()
                .with_trials(4)
                .with_shards(shards)
                .run()
        };
        assert_ne!(
            run(2).samples,
            run(4).samples,
            "independent shard streams should not collide"
        );
    }

    #[test]
    fn sharded_spec_validation_names_the_offender() {
        let err = SimSpec::parse("cycle:16", "rw")
            .unwrap()
            .with_shards(4)
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("cobra, bips"), "{err}");
        let err = SimSpec::parse("cycle:16", "cobra:b2")
            .unwrap()
            .with_shards(2)
            .with_objective(Objective::Trajectory)
            .measure()
            .unwrap_err();
        assert!(err.to_string().contains("shards=1"), "{err}");
        let err = SimSpec::parse("cycle:16", "cobra:b2")
            .unwrap()
            .with_shards(0)
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains(">= 1"), "{err}");
    }

    #[test]
    fn resolve_reports_per_shard_state_bytes() {
        let r = SimSpec::parse("hypercube:20", "cobra:b2")
            .unwrap()
            .with_shards(8)
            .resolve()
            .unwrap();
        assert_eq!(r.shards, 8);
        // span = 2^20/8 = 2^17 local vertices → 16 KiB per bitset, ×3.
        assert_eq!(r.shard_state_bytes, 3 * (1 << 14));
        let unsharded = SimSpec::parse("hypercube:20", "cobra:b2")
            .unwrap()
            .resolve()
            .unwrap();
        assert_eq!(unsharded.shards, 1);
        assert_eq!(unsharded.shard_state_bytes, 3 * (1 << 17));
    }

    #[test]
    fn disconnected_file_graphs_reject_full_reach_objectives() {
        let dir = std::env::temp_dir().join(format!("cobra-sim-ingest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("disconnected-check.txt");
        // Triangle {0,1,2} plus the far edge {3,4}.
        std::fs::write(&path, "0 1\n1 2\n0 2\n3 4\n").unwrap();
        let spec = format!("file:{}", path.display());

        for objective in ["cover", "hit:far"] {
            let err = SimSpec::parse(&spec, "cobra:b2")
                .unwrap()
                .with_objective(objective.parse().unwrap())
                .measure()
                .unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("2 connected components")
                    && msg.contains("60.0%")
                    && msg.contains("component=giant"),
                "{objective}: {msg}"
            );
        }

        // Objectives that can terminate inside one component still run.
        let est = SimSpec::parse(&spec, "cobra:b2")
            .unwrap()
            .with_trials(4)
            .reaching(2)
            .run();
        assert_eq!(est.censored, 0);

        // The giant modifier restricts to the triangle and cover works.
        let giant = format!("file:{}?component=giant", path.display());
        let est = SimSpec::parse(&giant, "cobra:b2")
            .unwrap()
            .with_trials(4)
            .run();
        assert_eq!(est.censored, 0);
        assert_eq!(est.mean_reached, 3.0);
    }

    #[test]
    fn random_graph_spec_is_reproducible() {
        let spec = SimSpec::parse("gnp:64:0.2", "cobra:b2")
            .unwrap()
            .with_trials(6);
        let a = spec.clone().run();
        let b = spec.clone().run();
        assert_eq!(a, b);
        // A different master seed samples a different graph.
        let c = spec.clone().with_seed(99).run();
        assert!(a.samples != c.samples || a.mean_transmissions != c.mean_transmissions);
    }
}
