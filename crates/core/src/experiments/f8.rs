//! F8 — the §3 serialisation: martingale drift and exact reconstruction.
//!
//! Two claims of the proof of Theorem 1.4, measured directly on
//! serialised BIPS runs:
//!
//! * inequality (18): every step's conditional drift
//!   `E(Y_l | history) ≥ 1/2` (for `b = 1+ρ`: `≥ ρ/2`);
//! * equation (14): `d(A_t) = d(v) + Σ_{l≤ν(t)} Y_l` — checked exactly
//!   at every round boundary of every run.

use crate::report::{fmt_f, Table};
use cobra_graph::{generators, Graph};
use cobra_process::{Branching, SerialBips};
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct Case {
    label: &'static str,
    graph: Graph,
    branching: Branching,
    drift_floor: f64,
}

fn cases(quick: bool) -> Vec<Case> {
    let scale = if quick { 1 } else { 2 };
    let mut v = vec![
        Case {
            label: "double_star",
            graph: generators::double_star(8 * scale, 16 * scale),
            branching: Branching::B2,
            drift_floor: 0.5,
        },
        Case {
            label: "lollipop",
            graph: generators::lollipop(8 * scale, 12 * scale),
            branching: Branching::B2,
            drift_floor: 0.5,
        },
        Case {
            label: "barbell",
            graph: generators::barbell(8 * scale, 8 * scale),
            branching: Branching::B2,
            drift_floor: 0.5,
        },
        Case {
            label: "binary_tree",
            graph: generators::k_ary_tree(63 * scale, 2),
            branching: Branching::B2,
            drift_floor: 0.5,
        },
        Case {
            label: "lollipop, b=1+0.4",
            graph: generators::lollipop(8 * scale, 12 * scale),
            branching: Branching::Expected(0.4),
            drift_floor: 0.2,
        },
    ];
    // A supercritical G(n,p) giant component for irregular structure.
    let mut rng = SmallRng::seed_from_u64(0xF8_0001);
    let gnp = generators::gnp(48 * scale, 3.0 / (48.0 * scale as f64), &mut rng);
    let (giant, _) = cobra_graph::props::largest_component(&gnp);
    v.push(Case {
        label: "G(n,p) giant",
        graph: giant,
        branching: Branching::B2,
        drift_floor: 0.5,
    });
    v
}

/// Runs F8 (`quick`: 3 runs per case; full: 10).
pub fn run(quick: bool) -> Table {
    let runs = if quick { 3 } else { 10 };
    let mut table = Table::new(
        "F8",
        "Serialised BIPS (§3): drift floor (ineq. 18) and eq. (14) reconstruction",
        &[
            "graph",
            "n",
            "steps",
            "min E(Y|hist)",
            "floor",
            "frac ≥ floor",
            "mean Y",
            "eq.14 exact",
        ],
    );
    for (ci, case) in cases(quick).into_iter().enumerate() {
        let mut min_drift = f64::INFINITY;
        let mut below_floor = 0usize;
        let mut steps_total = 0usize;
        let mut y_sum_all = 0.0f64;
        let mut eq14_ok = true;
        for run_idx in 0..runs {
            let mut ctx = cobra_process::StepCtx::seeded(0xF8_10 + (ci * 64 + run_idx) as u64);
            let source = 0u32;
            let mut s = SerialBips::new(&case.graph, source, case.branching);
            let mut y_sum: i64 = case.graph.degree(source) as i64;
            let cap = 40 * case.graph.n() + 4000;
            while !s.is_complete() && s.rounds() < cap {
                let report = s.step_round(&mut ctx);
                for st in &report.steps {
                    min_drift = min_drift.min(st.expected_y);
                    if st.expected_y < case.drift_floor - 1e-9 {
                        below_floor += 1;
                    }
                    steps_total += 1;
                    y_sum += st.y;
                    y_sum_all += st.y as f64;
                }
                eq14_ok &= y_sum == s.infected_degree() as i64;
            }
        }
        table.push_row(vec![
            case.label.to_string(),
            case.graph.n().to_string(),
            steps_total.to_string(),
            fmt_f(min_drift),
            fmt_f(case.drift_floor),
            fmt_f(1.0 - below_floor as f64 / steps_total.max(1) as f64),
            fmt_f(y_sum_all / steps_total.max(1) as f64),
            if eq14_ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    table.note(
        "ineq. (18) is per-configuration: `frac ≥ floor` must be exactly 1; eq. (14) is an \
         identity: `eq.14 exact` must be `yes` on every row"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_satisfy_the_drift_floor() {
        let t = run(true);
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            let frac: f64 = row[6 - 1].parse().unwrap();
            assert_eq!(frac, 1.0, "drift floor violated: {row:?}");
        }
    }

    #[test]
    fn equation_14_exact_everywhere() {
        let t = run(true);
        for row in &t.rows {
            assert_eq!(row[7], "yes", "eq. 14 reconstruction failed: {row:?}");
        }
    }

    #[test]
    fn min_drift_at_least_floor() {
        let t = run(true);
        for row in &t.rows {
            let min_drift: f64 = row[3].parse().unwrap();
            let floor: f64 = row[4].parse().unwrap();
            assert!(min_drift >= floor - 1e-9, "min drift below floor: {row:?}");
        }
    }
}
