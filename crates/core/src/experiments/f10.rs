//! F10 — Lemma 4.1/4.2: the one-round conditional expectation.
//!
//! For a connected `r`-regular graph and any infected set `A`,
//! `E(|A_{t+1}| | A_t = A) ≥ |A|·(1 + ρ(1−λ²)(1−|A|/n))` (ρ = 1 for
//! `b = 2`). We condition on explicit sets `A` of controlled size — both
//! uniformly random sets and adversarial BFS balls (low boundary) — and
//! measure the one-round mean, which must clear the bound within noise
//! for every configuration shape.

use crate::report::{fmt_f, Table};
use cobra_graph::{generators, props, Graph, VertexId};
use cobra_process::{Bips, BipsMode, Branching, Laziness, ProcessState, StepCtx};
use cobra_spectral::lanczos_edge_spectrum;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

fn cases(quick: bool) -> Vec<(&'static str, Graph)> {
    let mut rng = SmallRng::seed_from_u64(0x0F10_0001);
    let n = if quick { 48 } else { 128 };
    vec![
        ("petersen", generators::petersen()),
        (
            "rand 4-reg",
            generators::random_regular(n, 4, true, &mut rng).unwrap(),
        ),
        ("cycle_power k=3", generators::cycle_power(n, 3)),
        ("ring_of_cliques", generators::ring_of_cliques(n / 6, 6)),
    ]
}

/// Builds a BFS ball of `size` vertices around `seed_vertex` — the
/// low-boundary (adversarial for expansion lemmas) set shape.
fn bfs_ball(g: &Graph, seed_vertex: VertexId, size: usize) -> Vec<VertexId> {
    let dist = props::bfs_distances(g, seed_vertex);
    let mut order: Vec<VertexId> = (0..g.n() as VertexId).collect();
    order.sort_by_key(|&v| dist[v as usize]);
    order.truncate(size);
    order
}

/// Runs F10 (`quick`: 400 conditioned rounds per point; full: 2000).
pub fn run(quick: bool) -> Table {
    let reps = if quick { 400 } else { 2000 };
    let sizes = [0.1f64, 0.25, 0.5, 0.75];
    let mut table = Table::new(
        "F10",
        "Lemma 4.1: measured E(|A_{t+1}| | A) vs |A|(1+(1−λ²)(1−|A|/n))",
        &[
            "graph",
            "set shape",
            "|A|/n",
            "measured E",
            "Lemma 4.1 bound",
            "margin",
        ],
    );
    for (ci, (label, g)) in cases(quick).into_iter().enumerate() {
        let lambda = lanczos_edge_spectrum(&g, 0).lambda_abs();
        let n = g.n();
        for (shape_idx, shape) in ["uniform", "bfs ball"].iter().enumerate() {
            for (si, &frac) in sizes.iter().enumerate() {
                let size = ((n as f64 * frac).round() as usize).clamp(1, n);
                let mut ctx = StepCtx::seeded(0x000F_1010 + (ci * 64 + shape_idx * 8 + si) as u64);
                let mut total_next = 0.0f64;
                let mut total_bound = 0.0f64;
                for _ in 0..reps {
                    let source = ctx.rng.random_range(0..n as u32);
                    let set: Vec<VertexId> = if *shape == "uniform" {
                        let mut all: Vec<VertexId> = (0..n as VertexId).collect();
                        all.shuffle(&mut ctx.rng);
                        all.truncate(size);
                        if !all.contains(&source) {
                            all[0] = source;
                        }
                        all
                    } else {
                        bfs_ball(&g, source, size)
                    };
                    let mut p = Bips::new(
                        &g,
                        source,
                        Branching::B2,
                        Laziness::None,
                        BipsMode::Bernoulli,
                    );
                    p.set_infected_state(&set);
                    let a = p.infected_count() as f64;
                    total_bound += a * (1.0 + (1.0 - lambda * lambda) * (1.0 - a / n as f64));
                    p.step(&mut ctx);
                    total_next += p.infected_count() as f64;
                }
                let measured = total_next / reps as f64;
                let bound = total_bound / reps as f64;
                table.push_row(vec![
                    label.to_string(),
                    shape.to_string(),
                    fmt_f(frac),
                    fmt_f(measured),
                    fmt_f(bound),
                    fmt_f(measured - bound),
                ]);
            }
        }
    }
    table.note(
        "margin = measured − bound must be ≥ 0 up to Monte-Carlo noise for every set shape \
         (the lemma quantifies over all A)"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 32, "4 graphs × 2 shapes × 4 sizes");
    }

    #[test]
    fn lemma_bound_respected_within_noise() {
        let t = run(true);
        for row in &t.rows {
            let measured: f64 = row[3].parse().unwrap();
            let margin: f64 = row[5].parse().unwrap();
            // Allow small negative noise (fraction of a vertex) at quick
            // fidelity.
            assert!(
                margin > -0.05 * measured.max(1.0),
                "Lemma 4.1 violated: {row:?}"
            );
        }
    }

    #[test]
    fn bound_is_nontrivial_for_small_sets() {
        // For |A|/n = 0.1 the bound must demand strict growth.
        let t = run(true);
        for row in t.rows.iter().filter(|r| r[2] == "0.100") {
            let frac_size: f64 = row[4].parse().unwrap();
            let measured: f64 = row[3].parse().unwrap();
            assert!(frac_size > 0.0);
            assert!(measured > 0.0);
        }
    }
}
