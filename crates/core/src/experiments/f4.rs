//! F4 — Theorem 1.1 on irregular families: `cover = O(m + dmax² log n)`.
//!
//! Two sizes per family; the shape check is that `cover / bound` does
//! not grow with `n` (the bound's constant is irrelevant, its growth
//! rate is the claim). Families chosen to stress different terms:
//! paths/cycles (the `m` term with `dmax = 2`), stars/double stars (the
//! `dmax²` term), barbells and lollipops (dense blobs plus appendages),
//! and binary trees (both small).

use crate::bounds;
use crate::cover::CoverConfig;
use crate::report::{fmt_f, Table};
use cobra_graph::{props, Graph};

struct Family {
    name: &'static str,
    build: fn(usize) -> Graph,
}

fn families() -> Vec<Family> {
    vec![
        Family {
            name: "path",
            build: |n| cobra_graph::generators::path(n),
        },
        Family {
            name: "cycle",
            build: |n| cobra_graph::generators::cycle(n | 1),
        },
        Family {
            name: "star",
            build: |n| cobra_graph::generators::star(n),
        },
        Family {
            name: "double_star",
            build: |n| cobra_graph::generators::double_star(n / 2 - 1, n - n / 2 - 1),
        },
        Family {
            name: "binary_tree",
            build: |n| cobra_graph::generators::k_ary_tree(n, 2),
        },
        Family {
            name: "barbell",
            build: |n| cobra_graph::generators::barbell(n / 4, n - 2 * (n / 4)),
        },
        Family {
            name: "lollipop",
            build: |n| cobra_graph::generators::lollipop(n / 3, n - n / 3),
        },
        Family {
            name: "wheel",
            build: |n| cobra_graph::generators::wheel(n),
        },
        Family {
            name: "pref_attach",
            build: |n| {
                // Deterministic instance: the heavy-tail stress for the
                // dmax² term (dmax ≈ √n).
                use rand::SeedableRng;
                let mut rng = rand::rngs::SmallRng::seed_from_u64(0xBA + n as u64);
                cobra_graph::generators::barabasi_albert(n, 2, &mut rng)
            },
        },
    ]
}

/// Runs F4 (`quick`: n ∈ {48, 96}; full: n ∈ {128, 256, 512}).
pub fn run(quick: bool) -> Table {
    let (sizes, trials): (Vec<usize>, usize) = if quick {
        (vec![48, 96], 6)
    } else {
        (vec![128, 256, 512], 20)
    };
    let mut table = Table::new(
        "F4",
        "Theorem 1.1 on irregular graphs: cover vs m + dmax²·ln n",
        &[
            "family",
            "n",
            "m",
            "dmax",
            "diam",
            "mean cover",
            "bound",
            "cover/bound",
        ],
    );
    let mut worst_growth: f64 = 0.0;
    for fam in families() {
        let mut prev_ratio: Option<f64> = None;
        for &n in &sizes {
            let g = (fam.build)(n);
            assert!(
                props::is_connected(&g),
                "{} generator broke connectivity",
                fam.name
            );
            let est = CoverConfig::default()
                .with_trials(trials)
                .with_seed(0xF4 ^ (n as u64) << 8)
                .to_sim(&g, &[0])
                .run();
            let s = est.summary();
            let bound = bounds::thm_1_1(g.n(), g.m(), g.max_degree());
            let ratio = s.mean / bound;
            let diam = props::diameter(&g).expect("connected");
            table.push_row(vec![
                fam.name.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                g.max_degree().to_string(),
                diam.to_string(),
                fmt_f(s.mean),
                fmt_f(bound),
                fmt_f(ratio),
            ]);
            if let Some(p) = prev_ratio {
                worst_growth = worst_growth.max(ratio / p);
            }
            prev_ratio = Some(ratio);
        }
    }
    table.note(format!(
        "shape check: cover/bound must not grow with n; worst consecutive growth factor = {}",
        fmt_f(worst_growth)
    ));
    table.note(
        "bounds use constant 1; ratios above 1 on sparse families reflect the paper's \
         unoptimised constants, not a shape violation"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_all_families_and_sizes() {
        let t = run(true);
        assert_eq!(t.rows.len(), 18, "9 families × 2 sizes");
    }

    #[test]
    fn star_cover_is_far_below_its_bound() {
        // Star: bound has dmax² = (n−1)², actual cover is Θ(log n)-ish;
        // ratio must be tiny.
        let t = run(true);
        for row in t.rows.iter().filter(|r| r[0] == "star") {
            let ratio: f64 = row[7].parse().unwrap();
            assert!(ratio < 0.1, "star ratio {ratio} unexpectedly large");
        }
    }

    #[test]
    fn ratios_do_not_explode_with_n() {
        let t = run(true);
        let worst: f64 = t.notes[0].split("= ").nth(1).unwrap().parse().unwrap();
        // A growth factor ≫ 2 between consecutive sizes would indicate a
        // shape violation of O(m + dmax² log n).
        assert!(worst < 3.0, "cover/bound grew by {worst}x between sizes");
    }

    #[test]
    fn cover_respects_lower_bound() {
        let t = run(true);
        for row in &t.rows {
            let n: usize = row[1].parse().unwrap();
            let diam: u32 = row[4].parse().unwrap();
            let cover: f64 = row[5].parse().unwrap();
            // Start vertex 0 may be central: eccentricity ≥ diam/2.
            let lb = bounds::lower_bound(n, diam / 2).floor();
            assert!(
                cover >= lb - 1.0,
                "{}: cover {cover} below lower bound {lb}",
                row[0]
            );
        }
    }
}
