//! F14 — Theorem 1.3 verified *exactly* (no Monte-Carlo).
//!
//! On graphs with `n ≤ 10`, both sides of the duality identity are
//! computed by subset-space dynamic programming (`cobra-exact`), so the
//! theorem is checked to floating-point precision — the strongest form
//! of experiment F6. Cases cover `b = 1`, `b = 2`, `b = 3`, fractional
//! `b = 1+ρ`, the lazy variant, bipartite graphs and multi-vertex
//! start sets.

use crate::report::{fmt_f, Table};
use cobra_exact::duality::exact_duality_report;
use cobra_graph::{generators, Graph, VertexId};
use cobra_process::{Branching, Laziness};

struct Case {
    label: &'static str,
    graph: Graph,
    v: VertexId,
    c: Vec<VertexId>,
    branching: Branching,
    laziness: Laziness,
}

fn cases(quick: bool) -> Vec<Case> {
    let mut v = vec![
        Case {
            label: "path(6), b=2",
            graph: generators::path(6),
            v: 5,
            c: vec![0],
            branching: Branching::B2,
            laziness: Laziness::None,
        },
        Case {
            label: "C_6 (bipartite), b=2",
            graph: generators::cycle(6),
            v: 3,
            c: vec![0],
            branching: Branching::B2,
            laziness: Laziness::None,
        },
        Case {
            label: "K_5, C={2,3}, b=2",
            graph: generators::complete(5),
            v: 0,
            c: vec![2, 3],
            branching: Branching::B2,
            laziness: Laziness::None,
        },
        Case {
            label: "star(6), b=1 (SRW)",
            graph: generators::star(6),
            v: 5,
            c: vec![1],
            branching: Branching::Fixed(1),
            laziness: Laziness::None,
        },
        Case {
            label: "lollipop(4,3), b=1+0.35",
            graph: generators::lollipop(4, 3),
            v: 6,
            c: vec![0],
            branching: Branching::Expected(0.35),
            laziness: Laziness::None,
        },
        Case {
            label: "C_5, lazy b=2",
            graph: generators::cycle(5),
            v: 2,
            c: vec![0],
            branching: Branching::B2,
            laziness: Laziness::Half,
        },
        Case {
            label: "K_{2,3}, b=3",
            graph: generators::complete_bipartite(2, 3),
            v: 0,
            c: vec![4],
            branching: Branching::Fixed(3),
            laziness: Laziness::None,
        },
    ];
    if !quick {
        v.push(Case {
            label: "Petersen, b=2",
            graph: generators::petersen(),
            v: 3,
            c: vec![8],
            branching: Branching::B2,
            laziness: Laziness::None,
        });
        v.push(Case {
            label: "Q_3, lazy b=2",
            graph: generators::hypercube(3),
            v: 0,
            c: vec![7],
            branching: Branching::B2,
            laziness: Laziness::Half,
        });
    }
    v
}

/// Runs F14 (`quick` drops the two largest DP cases).
pub fn run(quick: bool) -> Table {
    let horizons: Vec<usize> = (0..=8).collect();
    let mut table = Table::new(
        "F14",
        "Exact duality (Thm 1.3) by subset-space DP: max |gap| over T = 0..8",
        &[
            "case",
            "n",
            "P(Hit>4) COBRA",
            "P(disjoint,4) BIPS",
            "max |gap|",
            "verdict",
        ],
    );
    for case in cases(quick) {
        let report = exact_duality_report(
            &case.graph,
            case.v,
            &case.c,
            case.branching,
            case.laziness,
            &horizons,
        );
        let gap = report.max_abs_gap();
        table.push_row(vec![
            case.label.to_string(),
            case.graph.n().to_string(),
            fmt_f(report.cobra_side[4]),
            fmt_f(report.bips_side[4]),
            format!("{gap:.2e}"),
            if gap < 1e-10 { "exact" } else { "VIOLATION" }.to_string(),
        ]);
    }
    table.note(
        "both sides computed by dynamic programming over all 2^n subset states — \
         the identity holds to floating-point rounding, not just within sampling noise"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_case_is_exact() {
        let t = run(true);
        assert_eq!(t.rows.len(), 7);
        for row in &t.rows {
            assert_eq!(row[5], "exact", "exact duality violated: {row:?}");
        }
    }

    #[test]
    fn both_sides_printed_equal() {
        let t = run(true);
        for row in &t.rows {
            assert_eq!(row[2], row[3], "rendered sides differ: {row:?}");
        }
    }
}
