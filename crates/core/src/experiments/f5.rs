//! F5 — Theorem 1.2's eigenvalue-gap dependence.
//!
//! Family: the regular ring of cliques (fixed degree `r = c−1`, gap
//! shrinking as the ring grows like a cycle's), so the sweep isolates
//! the `r/(1−λ)` term of `O((r/(1−λ) + r²) log n)`. The shape check:
//! `cover / bound` stays bounded as the gap collapses, and the fitted
//! exponent of cover vs `1/(1−λ)` stays at or below 1.

use crate::bounds;
use crate::cover::CoverConfig;
use crate::report::{fmt_f, Table};
use cobra_graph::generators;
use cobra_spectral::lanczos_edge_spectrum;
use cobra_stats::fit_power_law;

/// Runs F5 (`quick`: rings of 4/8 cliques; full: 8..64).
pub fn run(quick: bool) -> Table {
    let clique_size = 6usize; // r = 5 throughout
    let (rings, trials): (Vec<usize>, usize) = if quick {
        (vec![4, 8], 6)
    } else {
        (vec![8, 16, 32, 64], 20)
    };
    let mut table = Table::new(
        "F5",
        "Ring of cliques (r = 5): COBRA b=2 cover vs (r/(1−λ) + r²)·ln n",
        &[
            "cliques",
            "n",
            "1-λ",
            "mean cover",
            "Thm1.2 bound",
            "cover/bound",
            "1/(1-λ)",
        ],
    );
    let mut inv_gaps = Vec::new();
    let mut covers = Vec::new();
    for &k in &rings {
        let g = generators::ring_of_cliques(k, clique_size);
        let r = g.regularity().expect("ring of cliques is regular");
        let spec = lanczos_edge_spectrum(&g, 0);
        let gap = spec.gap();
        assert!(gap > 0.0, "ring of cliques must be non-bipartite");
        let est = CoverConfig::default()
            .with_trials(trials)
            .with_seed(0xF5 + k as u64)
            .to_sim(&g, &[0])
            .run();
        let s = est.summary();
        let bound = bounds::thm_1_2(g.n(), r, gap);
        inv_gaps.push(1.0 / gap);
        covers.push(s.mean);
        table.push_row(vec![
            k.to_string(),
            g.n().to_string(),
            fmt_f(gap),
            fmt_f(s.mean),
            fmt_f(bound),
            fmt_f(s.mean / bound),
            fmt_f(1.0 / gap),
        ]);
    }
    let (alpha, _, fit) = fit_power_law(&inv_gaps, &covers);
    table.note(format!(
        "fitted cover ≈ c·(1/(1−λ))^α: α = {} (R² = {}); Theorem 1.2 permits at most α = 1 \
         (plus the log n factor)",
        fmt_f(alpha),
        fmt_f(fit.r_squared)
    ));
    let max_ratio = table
        .rows
        .iter()
        .map(|r| r[5].parse::<f64>().unwrap())
        .fold(0.0f64, f64::max);
    table.note(format!(
        "max cover/bound = {} — bounded ratios across a {}x gap collapse confirm the shape",
        fmt_f(max_ratio),
        fmt_f(inv_gaps.last().unwrap() / inv_gaps.first().unwrap())
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.notes.len(), 2);
    }

    #[test]
    fn gap_shrinks_as_ring_grows() {
        let t = run(true);
        let g0: f64 = t.rows[0][2].parse().unwrap();
        let g1: f64 = t.rows[1][2].parse().unwrap();
        assert!(g1 < g0, "gap failed to shrink: {g0} -> {g1}");
    }

    #[test]
    fn cover_stays_below_bound_shape() {
        let t = run(true);
        for row in &t.rows {
            let ratio: f64 = row[5].parse().unwrap();
            assert!(
                ratio < 2.0,
                "cover/bound = {ratio}: Theorem 1.2 shape violated"
            );
        }
    }

    #[test]
    fn fitted_exponent_at_most_one_ish() {
        let t = run(true);
        let alpha: f64 = t.notes[0]
            .split("α = ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            alpha < 1.4,
            "gap exponent {alpha} exceeds Theorem 1.2's shape"
        );
    }
}
