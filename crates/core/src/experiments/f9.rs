//! F9 — Lemma 3.1 degree growth: `d(A_t) ≥ d(v) + k` within
//! `t(k) = 4k + C'·dmax²·log n` rounds, w.h.p.
//!
//! On irregular graphs we run BIPS `b = 2`, record the first round at
//! which the infected degree clears `d(v) + k` for a ladder of targets
//! `k`, and compare against the `t(k)` shape with `C' = 1`. The slope
//! of `t` versus `k` is the sharp part of the claim (4k dominates once
//! `k ≫ dmax² log n`), so the fitted slope is reported per graph.
//!
//! Runs on the campaign scheduling layer: each graph case is a
//! `GraphSpec`-named job dispatched through
//! `cobra_campaign::run_graph_jobs`, the worker's long-lived `StepCtx`
//! is reseeded per trial, and the BIPS state is built once per job and
//! reset per trial — the same per-worker reuse the sweep runner gives
//! every campaign point, with values bit-identical to the pre-migration
//! per-trial constructions (reset ≡ fresh build, reseed ≡ fresh
//! context; both pinned by the process-crate tests).

use crate::report::{fmt_f, Table};
use cobra_campaign::run_graph_jobs;
use cobra_graph::GraphSpec;
use cobra_process::{Bips, BipsMode, Branching, Laziness, ProcessState, ProcessView};
use cobra_stats::fit_line;
use cobra_util::math::ln_usize;

fn cases(quick: bool) -> Vec<(&'static str, String)> {
    let n = if quick { 96 } else { 256 };
    vec![
        ("path", format!("path:{n}")),
        ("cycle", format!("cycle:{}", n + 1)),
        ("binary_tree", format!("tree:2:{}", n - 1)),
        ("barbell", format!("barbell:{}:{}", n / 4, n / 2)),
    ]
}

/// Per-case measurement: mean first-passage rounds per target fraction.
struct CaseResult {
    rows: Vec<(f64, usize, f64, f64)>,
    slope: f64,
}

/// Runs F9 (`quick`: n ≈ 96, 5 trials; full: n ≈ 256, 15 trials).
pub fn run(quick: bool) -> Table {
    let trials = if quick { 5 } else { 15 };
    let fractions = [0.25f64, 0.5, 0.75, 1.0];
    let cases = cases(quick);
    let specs: Vec<GraphSpec> = cases
        .iter()
        .map(|(_, s)| s.parse().expect("static case spec"))
        .collect();
    let results = run_graph_jobs(&specs, 0, 0, |_case, g, ctx| {
        let source = 0u32;
        let d_v = g.degree(source);
        let two_m = g.degree_sum();
        let dmax = g.max_degree();
        let shape_const = (dmax * dmax) as f64 * ln_usize(g.n());
        let targets: Vec<usize> = fractions
            .iter()
            .map(|f| (((two_m - d_v) as f64) * f).round() as usize)
            .collect();
        // Per-trial first-passage rounds for each target; one BIPS
        // state per job, reset per trial on the worker's context.
        let mut p = Bips::new(
            g,
            source,
            Branching::B2,
            Laziness::None,
            BipsMode::Bernoulli,
        );
        let mut sums = vec![0.0f64; targets.len()];
        for trial in 0..trials {
            ctx.reseed(0xF9_00 + trial as u64);
            p.reset(g, &[source]);
            let mut reached = vec![None; targets.len()];
            let cap = 100 * two_m + 100_000;
            while reached.iter().any(Option::is_none) && p.rounds() < cap {
                p.step(ctx);
                let d_now = p.infected_degree();
                for (i, &k) in targets.iter().enumerate() {
                    if reached[i].is_none() && d_now >= d_v + k {
                        reached[i] = Some(p.rounds());
                    }
                }
            }
            for (i, r) in reached.iter().enumerate() {
                sums[i] += r.expect("cap chosen far above Lemma 3.1's t(k)") as f64;
            }
        }
        let mut ks = Vec::new();
        let mut ts = Vec::new();
        let mut rows = Vec::new();
        for (i, &k) in targets.iter().enumerate() {
            let mean_t = sums[i] / trials as f64;
            let t_shape = 4.0 * k as f64 + shape_const;
            ks.push(k as f64);
            ts.push(mean_t);
            rows.push((fractions[i], k, mean_t, t_shape));
        }
        CaseResult {
            rows,
            slope: fit_line(&ks, &ts).slope,
        }
    })
    .expect("static case specs build");
    let mut table = Table::new(
        "F9",
        "Lemma 3.1: rounds until d(A_t) ≥ d(v)+k vs t(k) = 4k + dmax²·ln n",
        &[
            "graph",
            "k/2m",
            "k",
            "mean t_emp(k)",
            "t(k) shape",
            "t_emp/t(k)",
        ],
    );
    for ((label, _), result) in cases.iter().zip(&results) {
        for &(fraction, k, mean_t, t_shape) in &result.rows {
            table.push_row(vec![
                label.to_string(),
                fmt_f(fraction),
                k.to_string(),
                fmt_f(mean_t),
                fmt_f(t_shape),
                fmt_f(mean_t / t_shape),
            ]);
        }
        table.note(format!(
            "{label}: d(A_t) first-passage slope dt/dk = {} (Lemma 3.1 shape: ≤ 4 once \
             k dominates dmax²·ln n)",
            fmt_f(result.slope)
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 16, "4 graphs × 4 targets");
        assert_eq!(t.notes.len(), 4);
    }

    #[test]
    fn growth_stays_within_lemma_shape() {
        let t = run(true);
        for row in &t.rows {
            let ratio: f64 = row[5].parse().unwrap();
            assert!(
                ratio < 2.0,
                "t_emp/t(k) = {ratio}: Lemma 3.1 shape violated at {row:?}"
            );
        }
    }

    #[test]
    fn first_passage_slopes_within_bound() {
        let t = run(true);
        for note in &t.notes {
            let slope: f64 = note
                .split("dt/dk = ")
                .nth(1)
                .unwrap()
                .split(' ')
                .next()
                .unwrap()
                .parse()
                .unwrap();
            assert!(
                slope <= 4.5,
                "slope {slope} above Lemma 3.1's 4 (+noise): {note}"
            );
            assert!(slope > 0.0);
        }
    }
}
