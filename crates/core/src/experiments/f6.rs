//! F6 — the duality theorem (Theorem 1.3) checked empirically.
//!
//! For several graphs, sources and start sets, both sides of
//! `P̂(Hit(v) > T | C₀=C) = P(C ∩ A_T = ∅ | A₀={v})` are estimated by
//! independent Monte-Carlo and compared per horizon with two-proportion
//! z-tests. The theorem needs no connectivity of spectra assumptions and
//! holds for every `b` — rows include bipartite graphs and `b = 1+ρ`.
//!
//! Runs on the campaign scheduling layer: each case names its graph as
//! a `GraphSpec` string, graphs materialise once through the campaign
//! graph cache, and the cases dispatch as *jobs* across the worker pool
//! (`cobra_campaign::run_graph_jobs`) with the per-case duality engines
//! pinned to one thread — parallelism moved from inside each case to
//! across cases, with bit-identical values (the engine is
//! thread-invariant and seeds are unchanged).

use crate::duality::{duality_check, DualityConfig};
use crate::report::{fmt_f, Table};
use cobra_campaign::run_graph_jobs;
use cobra_graph::{GraphSpec, VertexId};
use cobra_process::Branching;

struct Case {
    label: &'static str,
    graph: &'static str,
    source: VertexId,
    start_set: Vec<VertexId>,
    branching: Branching,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            label: "Petersen, C={8}",
            graph: "petersen",
            source: 3,
            start_set: vec![8],
            branching: Branching::B2,
        },
        Case {
            label: "K_12, C={4,5,6}",
            graph: "complete:12",
            source: 0,
            start_set: vec![4, 5, 6],
            branching: Branching::B2,
        },
        Case {
            label: "Q_4 (bipartite), C={15}",
            graph: "hypercube:4",
            source: 0,
            start_set: vec![15],
            branching: Branching::B2,
        },
        Case {
            label: "C_9, C={4}",
            graph: "cycle:9",
            source: 0,
            start_set: vec![4],
            branching: Branching::B2,
        },
        Case {
            label: "lollipop(5,4), C={tip}",
            graph: "lollipop:5:4",
            source: 0,
            start_set: vec![8],
            branching: Branching::B2,
        },
        Case {
            label: "K_8, b=1+0.5, C={6}",
            graph: "complete:8",
            source: 2,
            start_set: vec![6],
            branching: Branching::Expected(0.5),
        },
    ]
}

/// Runs F6 (`quick`: 800 trials/side; full: 8000).
pub fn run(quick: bool) -> Table {
    let trials = if quick { 800 } else { 8000 };
    let cases = cases();
    let specs: Vec<GraphSpec> = cases
        .iter()
        .map(|c| c.graph.parse().expect("static case spec"))
        .collect();
    // One job per case; the inner two-sided engines run sequentially so
    // the worker pool is spent across cases, not within them.
    let reports = run_graph_jobs(&specs, 0, 0, |i, g, _ctx| {
        let case = &cases[i];
        let cfg = DualityConfig {
            branching: case.branching,
            trials,
            horizons: vec![0, 1, 2, 3, 4, 6, 8, 12],
            master_seed: 0xF6_00 + i as u64,
            threads: 1,
        };
        (g.n(), duality_check(g, case.source, &case.start_set, &cfg))
    })
    .expect("static case specs build");
    let mut table = Table::new(
        "F6",
        "Duality (Thm 1.3): max deviation between the COBRA and BIPS sides",
        &["case", "n", "horizons", "max |diff|", "max |z|", "verdict"],
    );
    for (case, (n, report)) in cases.iter().zip(&reports) {
        let max_z = report.max_abs_z();
        // 8 horizons × 6 cases: Bonferroni-ish noise ceiling ~4.
        let verdict = if max_z < 4.0 { "equal" } else { "VIOLATION" };
        table.push_row(vec![
            case.label.to_string(),
            n.to_string(),
            report.rows.len().to_string(),
            fmt_f(report.max_abs_diff()),
            fmt_f(max_z),
            verdict.to_string(),
        ]);
    }
    table.note(format!(
        "{trials} trials per side; z compares two binomial proportions"
    ));
    table.note(
        "Theorem 1.3 is an exact identity: every row must read `equal` (|z| within noise)"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cases_report_equality() {
        let t = run(true);
        assert_eq!(t.rows.len(), 6);
        for row in &t.rows {
            assert_eq!(row[5], "equal", "duality violated in {row:?}");
        }
    }

    #[test]
    fn diffs_are_small() {
        let t = run(true);
        for row in &t.rows {
            let diff: f64 = row[3].parse().unwrap();
            assert!(
                diff < 0.08,
                "max diff {diff} too large at quick fidelity: {row:?}"
            );
        }
    }
}
