//! The experiment registry: every quantitative claim of the paper as a
//! reproducible table.
//!
//! The paper publishes no numbered figures or tables (it is a theory
//! paper), so each experiment regenerates one of its quantitative
//! claims; the mapping to paper locations lives in DESIGN.md §4 and the
//! recorded outcomes in EXPERIMENTS.md.
//!
//! | id  | claim |
//! |-----|-------|
//! | T1  | hypercube bound ladder `O(log⁸ n) → O(log⁴ n) → O(log³ n)` |
//! | F1  | complete graph cover `O(log n)` |
//! | F2  | expander cover `O(log n)` (Thm 1.2 with constant gap) |
//! | F3  | D-dimensional torus cover `≈ n^{1/D}` |
//! | F4  | Thm 1.1 `O(m + dmax² log n)` on irregular families |
//! | F5  | Thm 1.2 gap dependence `O((r/(1−λ) + r²) log n)` |
//! | F6  | duality identity (Thm 1.3) |
//! | F7  | §6 branching factor `b = 1+ρ`: `1/ρ²` bound scaling |
//! | F8  | §3 serialisation: `E(Y_l | history) ≥ 1/2` and eq. (14) |
//! | F9  | Lemma 3.1 degree growth `t(k) = 4k + C'·dmax² log n` |
//! | F10 | Lemma 4.1/4.2 one-round expectation |
//! | F11 | Corollary 5.2 candidate-set lower bound |
//! | F12 | baseline separation (SRW / k-walks / PUSH vs COBRA) |
//! | F13 | §5 phase structure of BIPS |
//! | F14 | Thm 1.3 *exactly*, by subset-space dynamic programming |
//! | F15 | ablation: BIPS round engines (law + cost) |
//! | F16 | ablation: lazy vs plain COBRA on bipartite graphs |
//!
//! Every experiment has two presets: `quick` (seconds; used by tests and
//! Criterion benches) and `full` (the EXPERIMENTS.md fidelity).

pub mod f1;
pub mod f10;
pub mod f11;
pub mod f12;
pub mod f13;
pub mod f14;
pub mod f15;
pub mod f16;
pub mod f2;
pub mod f3;
pub mod f4;
pub mod f5;
pub mod f6;
pub mod f7;
pub mod f8;
pub mod f9;
pub mod t1;

use crate::report::Table;

/// All experiment ids, in presentation order.
pub const ALL_IDS: [&str; 17] = [
    "t1", "f1", "f2", "f3", "f4", "f5", "f6", "f7", "f8", "f9", "f10", "f11", "f12", "f13", "f14",
    "f15", "f16",
];

/// Runs an experiment by id (case-insensitive). `quick` selects the
/// fast preset. Returns `None` for unknown ids.
pub fn run(id: &str, quick: bool) -> Option<Table> {
    match id.to_ascii_lowercase().as_str() {
        "t1" => Some(t1::run(quick)),
        "f1" => Some(f1::run(quick)),
        "f2" => Some(f2::run(quick)),
        "f3" => Some(f3::run(quick)),
        "f4" => Some(f4::run(quick)),
        "f5" => Some(f5::run(quick)),
        "f6" => Some(f6::run(quick)),
        "f7" => Some(f7::run(quick)),
        "f8" => Some(f8::run(quick)),
        "f9" => Some(f9::run(quick)),
        "f10" => Some(f10::run(quick)),
        "f11" => Some(f11::run(quick)),
        "f12" => Some(f12::run(quick)),
        "f13" => Some(f13::run(quick)),
        "f14" => Some(f14::run(quick)),
        "f15" => Some(f15::run(quick)),
        "f16" => Some(f16::run(quick)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_none() {
        assert!(run("nope", true).is_none());
    }

    #[test]
    fn ids_are_unique_and_lowercase() {
        let mut seen = std::collections::HashSet::new();
        for id in ALL_IDS {
            assert!(seen.insert(id));
            assert_eq!(id, id.to_ascii_lowercase());
        }
    }
}
