//! T1 — the hypercube bound ladder.
//!
//! The introduction's worked example: for `Q_d` (`n = 2^d`) the COBRA
//! cover-time bounds of SPAA '16, PODC '16 and this paper are
//! `O(log⁸ n)`, `O(log⁴ n)` and `O(log³ n)` respectively. We run the
//! lazy COBRA `b = 2` (the hypercube is bipartite; the lazy variant is
//! the paper's stated fix), measure `cover(0)` over a sweep of `d`, and
//! print the measured value next to the three bound shapes. The shape
//! check: measured cover grows like a *low* power of `log n` (fitted
//! exponent well below 3), and the ladder itself is strictly ordered.

use crate::bounds;
use crate::report::{fmt_f, Table};
use crate::sim::SimSpec;
use cobra_graph::generators;
use cobra_stats::fit_power_law;

/// Runs T1. `quick` sweeps `d = 5..=8` with few trials; full sweeps
/// `d = 6..=13`.
pub fn run(quick: bool) -> Table {
    let (dims, trials): (Vec<u32>, usize) = if quick {
        ((5..=8).collect(), 6)
    } else {
        ((6..=13).collect(), 24)
    };
    let mut table = Table::new(
        "T1",
        "Hypercube Q_d: measured lazy-COBRA cover vs the bound ladder",
        &[
            "d",
            "n",
            "mean cover",
            "std",
            "O(log^8 n) [SPAA16]",
            "O(log^4 n) [PODC16]",
            "O(log^3 n) [this paper]",
        ],
    );

    let mut ln_ns: Vec<f64> = Vec::new();
    let mut covers: Vec<f64> = Vec::new();
    for &d in &dims {
        let g = generators::hypercube(d);
        // The unified objective path: `cover` streams its reduction,
        // no sample vector (mean/std are the same Welford fold the
        // sample path produced).
        let est = SimSpec::new(&g, "cobra:b2:lazy".parse().expect("static spec"))
            .with_trials(trials)
            .with_seed(0x71 + d as u64)
            .measure()
            .unwrap_or_else(|e| panic!("{e}"))
            .into_stopping()
            .expect("cover is a stopping objective");
        let (spaa16, podc, this_paper) = bounds::hypercube_ladder(d);
        ln_ns.push((g.n() as f64).ln());
        covers.push(est.mean);
        table.push_row(vec![
            d.to_string(),
            g.n().to_string(),
            fmt_f(est.mean),
            fmt_f(est.std_dev),
            fmt_f(spaa16),
            fmt_f(podc),
            fmt_f(this_paper),
        ]);
    }

    let (alpha, _, fit) = fit_power_law(&ln_ns, &covers);
    table.note(format!(
        "fitted cover ≈ c·(ln n)^α with α = {} (R² = {}); paper ladder exponents: 8 → 4 → 3",
        fmt_f(alpha),
        fmt_f(fit.r_squared)
    ));
    table.note(
        "shape check: measured exponent must sit at or below 3 (it does — the truth is \
         conjectured Θ(log n), i.e. exponent 1)"
            .to_string(),
    );
    let last = dims.len() - 1;
    let (s8, p4, t3) = bounds::hypercube_ladder(dims[last]);
    table.note(format!(
        "ladder strictly ordered at d = {}: {} < {} < {}",
        dims[last],
        fmt_f(t3),
        fmt_f(p4),
        fmt_f(s8)
    ));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_preset_produces_expected_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
        assert_eq!(t.headers.len(), 7);
        assert!(t.notes.iter().any(|n| n.contains("fitted")));
        // Mean cover at d=5 (n=32) must respect the doubling lower bound.
        let mean: f64 = t.rows[0][2].parse().unwrap();
        assert!(mean >= 5.0, "cover(Q_5) = {mean} beats log2 n");
    }

    #[test]
    fn measured_exponent_below_three() {
        let t = run(true);
        let note = t.notes.iter().find(|n| n.contains("α =")).unwrap();
        // Parse "α = X" out of the note.
        let alpha: f64 = note
            .split("α = ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(alpha < 3.0, "measured hypercube exponent {alpha} ≥ 3");
        assert!(alpha > 0.0, "cover must grow with n");
    }
}
