//! F3 — D-dimensional tori: cover `≈ n^{1/D}`.
//!
//! Prior work bounds quoted in §1: `Õ(n^{1/D})` (Dutta et al.) and
//! `O(D² n^{1/D})` (Mitzenmacher et al.). We sweep odd side lengths
//! (odd ⇒ non-bipartite, so the plain chain applies), fit the exponent
//! of cover vs `n` per dimension, and expect `α ≈ 1/D`.

use crate::bounds;
use crate::cover::CoverConfig;
use crate::report::{fmt_f, Table};
use cobra_graph::generators;
use cobra_stats::fit_power_law;

/// Runs F3 (`quick`: two sizes per dimension; full: four).
pub fn run(quick: bool) -> Table {
    // Odd sides keep the torus non-bipartite.
    let sides: Vec<Vec<usize>> = if quick {
        vec![
            vec![33, 65], // D = 1 (cycle)
            vec![9, 15],  // D = 2
            vec![5, 7],   // D = 3
        ]
    } else {
        vec![
            vec![65, 129, 257, 513],
            vec![9, 15, 25, 41],
            vec![5, 7, 9, 13],
        ]
    };
    let trials = if quick { 6 } else { 20 };
    let mut table = Table::new(
        "F3",
        "D-dimensional torus: COBRA b=2 cover vs n^{1/D}",
        &[
            "D",
            "side",
            "n",
            "mean cover",
            "n^{1/D}",
            "cover/n^{1/D}",
            "SPAA16 D²n^{1/D}",
        ],
    );
    for (dim_idx, dim_sides) in sides.iter().enumerate() {
        let d = dim_idx + 1;
        let mut ns = Vec::new();
        let mut covers = Vec::new();
        for &side in dim_sides {
            let dims = vec![side; d];
            let g = generators::torus(&dims);
            let n = g.n();
            let est = CoverConfig::default()
                .with_trials(trials)
                .with_seed(0xF3 + (d * 1000 + side) as u64)
                .to_sim(&g, &[0])
                .run();
            let s = est.summary();
            let root = (n as f64).powf(1.0 / d as f64);
            ns.push(n as f64);
            covers.push(s.mean);
            table.push_row(vec![
                d.to_string(),
                side.to_string(),
                n.to_string(),
                fmt_f(s.mean),
                fmt_f(root),
                fmt_f(s.mean / root),
                fmt_f(bounds::spaa16_grid(n, d as u32)),
            ]);
        }
        let (alpha, _, fit) = fit_power_law(&ns, &covers);
        table.note(format!(
            "D = {d}: fitted cover ≈ c·n^α, α = {} (R² = {}); claim shape 1/D = {}",
            fmt_f(alpha),
            fmt_f(fit.r_squared),
            fmt_f(1.0 / d as f64)
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 6, "3 dims × 2 sizes");
        assert_eq!(t.notes.len(), 3);
    }

    #[test]
    fn one_dimensional_cover_is_linear_in_n() {
        let t = run(true);
        // D=1 rows: cover/n^{1} should be order 1 (COBRA crosses a cycle
        // at boundary speed).
        for row in t.rows.iter().filter(|r| r[0] == "1") {
            let ratio: f64 = row[5].parse().unwrap();
            assert!((0.2..20.0).contains(&ratio), "cycle ratio {ratio}: {row:?}");
        }
    }

    #[test]
    fn exponents_decrease_with_dimension() {
        let t = run(true);
        let alphas: Vec<f64> = t
            .notes
            .iter()
            .map(|n| {
                n.split("α = ")
                    .nth(1)
                    .unwrap()
                    .split(' ')
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(alphas[0] > alphas[1], "α(D=1) ≤ α(D=2): {alphas:?}");
        assert!(alphas[1] > alphas[2] - 0.1, "α(D=2) ≪ α(D=3): {alphas:?}");
    }
}
