//! F1 — complete graph: COBRA covers `K_n` in `O(log n)` rounds.
//!
//! Claim (i) of Dutta et al. quoted in §1, subsumed by Theorem 1.2
//! (`r = n−1`, `λ = 1/(n−1)`: the `r²` term is vacuous at the scale of
//! interest because cover can't exceed n· anything — the point here is
//! the measured `Θ(log n)` shape). The shape check fits
//! `cover ≈ c·(ln n)^α` and expects `α ≈ 1`.

use crate::report::{fmt_f, Table};
use crate::sim::SimSpec;
use cobra_graph::generators;
use cobra_stats::{fit_line, fit_power_law};

/// Runs F1 (`quick`: n = 2^5..2^8, few trials; full: n = 2^7..2^13).
pub fn run(quick: bool) -> Table {
    let (exponents, trials): (Vec<u32>, usize) = if quick {
        ((5..=8).collect(), 8)
    } else {
        ((7..=13).collect(), 30)
    };
    let mut table = Table::new(
        "F1",
        "Complete graph K_n: COBRA b=2 cover time vs log n",
        &["n", "mean cover", "std", "log2 n", "cover / log2 n"],
    );
    let mut ln_ns = Vec::new();
    let mut covers = Vec::new();
    for &k in &exponents {
        let n = 1usize << k;
        let g = generators::complete(n);
        // Streamed through the `cover` objective — same Welford fold
        // the sample-vector path produced, no samples materialized.
        let est = SimSpec::new(&g, "cobra:b2".parse().expect("static spec"))
            .with_trials(trials)
            .with_seed(0xF1 + k as u64)
            .measure()
            .unwrap_or_else(|e| panic!("{e}"))
            .into_stopping()
            .expect("cover is a stopping objective");
        ln_ns.push((n as f64).ln());
        covers.push(est.mean);
        table.push_row(vec![
            n.to_string(),
            fmt_f(est.mean),
            fmt_f(est.std_dev),
            k.to_string(),
            fmt_f(est.mean / k as f64),
        ]);
    }
    let (alpha, _, pfit) = fit_power_law(&ln_ns, &covers);
    let lfit = fit_line(&ln_ns, &covers);
    table.note(format!(
        "power fit cover ≈ c·(ln n)^α: α = {} (R² = {}); linear fit slope {} per ln n (R² = {})",
        fmt_f(alpha),
        fmt_f(pfit.r_squared),
        fmt_f(lfit.slope),
        fmt_f(lfit.r_squared)
    ));
    table.note("paper claim: O(log n); shape holds iff α ≈ 1".to_string());
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_rows_and_notes() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
        assert!(t.notes[0].contains("α ="));
    }

    #[test]
    fn cover_per_log_ratio_is_order_one() {
        let t = run(true);
        for row in &t.rows {
            let ratio: f64 = row[4].parse().unwrap();
            assert!(
                (0.9..12.0).contains(&ratio),
                "cover/log2n = {ratio} out of the O(log n) band"
            );
        }
    }

    #[test]
    fn fitted_exponent_near_one() {
        let t = run(true);
        let alpha: f64 = t.notes[0]
            .split("α = ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // Generous band at quick fidelity; the full run tightens this.
        assert!(
            (0.3..2.0).contains(&alpha),
            "K_n exponent {alpha} far from 1"
        );
    }
}
