//! F16 — ablation: laziness on bipartite graphs.
//!
//! The paper's theorems for bipartite graphs go through the lazy
//! variant (each pick is "self" with probability ½), because `λ = 1`
//! breaks the spectral machinery. The *set* process itself needs no
//! such fix to cover — coalescing across the two sides keeps both
//! parities active. This ablation measures the price of laziness: the
//! lazy process satisfies the theorem's preconditions but is slower by
//! roughly the factor-2 pick dilution.

use crate::cover::CoverConfig;
use crate::report::{fmt_f, Table};
use cobra_graph::{generators, props, Graph};
use cobra_spectral::{lanczos_edge_spectrum, lazy_lambda};

fn cases(quick: bool) -> Vec<(&'static str, Graph)> {
    if quick {
        vec![
            ("Q_6", generators::hypercube(6)),
            ("C_64", generators::cycle(64)),
            ("K_{16,16}", generators::complete_bipartite(16, 16)),
        ]
    } else {
        vec![
            ("Q_10", generators::hypercube(10)),
            ("C_256", generators::cycle(256)),
            ("K_{64,64}", generators::complete_bipartite(64, 64)),
            ("grid 16x16", generators::grid(&[16, 16])),
        ]
    }
}

/// Runs F16 (`quick`: 3 bipartite graphs, 8 trials; full: 4 graphs, 20).
pub fn run(quick: bool) -> Table {
    let trials = if quick { 8 } else { 20 };
    let mut table = Table::new(
        "F16",
        "Ablation: lazy vs plain COBRA b=2 on bipartite graphs",
        &[
            "graph",
            "n",
            "λ (plain)",
            "λ (lazy)",
            "cover plain",
            "cover lazy",
            "lazy/plain",
        ],
    );
    for (i, (label, g)) in cases(quick).into_iter().enumerate() {
        assert!(
            props::is_bipartite(&g),
            "{label} must be bipartite for this ablation"
        );
        let lam_plain = lanczos_edge_spectrum(&g, 0).lambda_abs();
        let lam_lazy = lazy_lambda(&g);
        let plain = CoverConfig::default()
            .with_trials(trials)
            .with_seed(0x0F16_0000 + i as u64)
            .to_sim(&g, &[0])
            .run()
            .summary()
            .mean;
        let lazy = CoverConfig::default()
            .lazy()
            .with_trials(trials)
            .with_seed(0x0F16_1000 + i as u64)
            .to_sim(&g, &[0])
            .run()
            .summary()
            .mean;
        table.push_row(vec![
            label.to_string(),
            g.n().to_string(),
            fmt_f(lam_plain),
            fmt_f(lam_lazy),
            fmt_f(plain),
            fmt_f(lazy),
            fmt_f(lazy / plain),
        ]);
    }
    table.note(
        "plain λ = 1 on every row (bipartite), so Theorem 1.2 is inapplicable to the plain \
         chain — yet the plain set process still covers, and faster: laziness costs ≈ the \
         2x pick dilution"
            .to_string(),
    );
    table.note(
        "lazy λ < 1 restores the theorem's precondition — the paper's remark after \
         Theorem 1.2 quantified"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_lambda_is_one_and_lazy_below() {
        let t = run(true);
        for row in &t.rows {
            let plain: f64 = row[2].parse().unwrap();
            let lazy: f64 = row[3].parse().unwrap();
            assert!(
                (plain - 1.0).abs() < 1e-6,
                "bipartite must have λ = 1: {row:?}"
            );
            assert!(lazy < 1.0 - 1e-6, "lazy λ must drop below 1: {row:?}");
        }
    }

    #[test]
    fn both_variants_cover_and_lazy_is_slower() {
        let t = run(true);
        for row in &t.rows {
            let plain: f64 = row[4].parse().unwrap();
            let lazy: f64 = row[5].parse().unwrap();
            assert!(plain > 0.0 && lazy > 0.0);
            let ratio: f64 = row[6].parse().unwrap();
            assert!(
                (1.0..5.0).contains(&ratio),
                "laziness cost outside the expected band: {row:?}"
            );
        }
    }
}
