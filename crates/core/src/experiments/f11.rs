//! F11 — Corollary 5.2: the candidate set is large.
//!
//! For regular graphs, whenever `|A_{t−1}| ≤ n/2`, the candidate set of
//! the next round satisfies `|C_t| ≥ |A_{t−1}|·(1−λ)/2`. The statement
//! is per-configuration (deterministic given `A_{t−1}`), so the check is
//! exact: along real BIPS trajectories every qualifying round must
//! clear the bound — the table reports the *minimum* ratio seen.

use crate::report::{fmt_f, Table};
use cobra_graph::{generators, Graph};
use cobra_process::{Branching, SerialBips};
use cobra_spectral::lanczos_edge_spectrum;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn cases(quick: bool) -> Vec<(&'static str, Graph)> {
    let mut rng = SmallRng::seed_from_u64(0x0F11_0001);
    let n = if quick { 60 } else { 120 };
    vec![
        ("petersen", generators::petersen()),
        (
            "rand 3-reg",
            generators::random_regular(n, 3, true, &mut rng).unwrap(),
        ),
        ("cycle_power k=2", generators::cycle_power(n, 2)),
        ("ring_of_cliques", generators::ring_of_cliques(n / 6, 6)),
    ]
}

/// Runs F11 (`quick`: 4 runs per graph; full: 12).
pub fn run(quick: bool) -> Table {
    let runs = if quick { 4 } else { 12 };
    let mut table = Table::new(
        "F11",
        "Corollary 5.2: |C_t| ≥ |A_{t−1}|(1−λ)/2 while |A_{t−1}| ≤ n/2",
        &[
            "graph",
            "n",
            "1-λ",
            "qualifying rounds",
            "min |C_t|/bound",
            "violations",
        ],
    );
    for (ci, (label, g)) in cases(quick).into_iter().enumerate() {
        let gap = lanczos_edge_spectrum(&g, 0).gap();
        assert!(
            gap > 0.0,
            "{label}: corollary needs non-bipartite connected graph"
        );
        let mut min_ratio = f64::INFINITY;
        let mut qualifying = 0usize;
        let mut violations = 0usize;
        for run_idx in 0..runs {
            let mut ctx = cobra_process::StepCtx::seeded(0x000F_1110 + (ci * 64 + run_idx) as u64);
            let mut s = SerialBips::new(&g, 0, Branching::B2);
            let cap = 400 * g.n() + 10_000;
            while !s.is_complete() && s.rounds() < cap {
                let a_prev = s.infected_count();
                let (cand, _) = s.candidates();
                if a_prev <= g.n() / 2 {
                    let bound = a_prev as f64 * gap / 2.0;
                    let ratio = cand.len() as f64 / bound.max(1e-12);
                    min_ratio = min_ratio.min(ratio);
                    if cand.len() < bound.floor() as usize {
                        violations += 1;
                    }
                    qualifying += 1;
                }
                s.step_round(&mut ctx);
            }
        }
        table.push_row(vec![
            label.to_string(),
            g.n().to_string(),
            fmt_f(gap),
            qualifying.to_string(),
            fmt_f(min_ratio),
            violations.to_string(),
        ]);
    }
    table.note(
        "Corollary 5.2 is deterministic given A_{t−1}: the violations column must be 0 and \
         every min ratio ≥ 1"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn no_violations_anywhere() {
        let t = run(true);
        for row in &t.rows {
            assert_eq!(row[5], "0", "Corollary 5.2 violated: {row:?}");
            let min_ratio: f64 = row[4].parse().unwrap();
            assert!(min_ratio >= 1.0, "min ratio {min_ratio} < 1: {row:?}");
        }
    }

    #[test]
    fn qualifying_rounds_observed() {
        let t = run(true);
        for row in &t.rows {
            let q: usize = row[3].parse().unwrap();
            assert!(q > 0, "no qualifying rounds measured: {row:?}");
        }
    }
}
