//! F2 — random regular expanders: `O(log n)` cover (Theorem 1.2 with a
//! constant eigenvalue gap).
//!
//! Random `r`-regular graphs have `λ ≈ 2√(r−1)/r` w.h.p. (Friedman), so
//! `1 − λ` is a constant and Theorem 1.2 collapses to
//! `O((r + r²) log n)` — plain `O(log n)` at fixed `r`. We measure the
//! gap with Lanczos per instance, verify the Theorem 1.2 gap condition,
//! and fit the cover exponent in `ln n`.

use crate::bounds;
use crate::cover::CoverConfig;
use crate::report::{fmt_f, Table};
use cobra_graph::generators;
use cobra_spectral::lanczos_edge_spectrum;
use cobra_stats::fit_power_law;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs F2 (`quick`: r ∈ {3, 8}, n = 2^5..2^7; full: n = 2^7..2^12).
pub fn run(quick: bool) -> Table {
    let (exponents, trials): (Vec<u32>, usize) = if quick {
        ((5..=7).collect(), 6)
    } else {
        ((7..=12).collect(), 20)
    };
    let degrees = [3usize, 8];
    let mut table = Table::new(
        "F2",
        "Random r-regular expanders: COBRA b=2 cover vs Theorem 1.2",
        &[
            "r",
            "n",
            "1-λ",
            "gap margin",
            "mean cover",
            "cover/log2 n",
            "Thm1.2 shape",
        ],
    );
    for &r in &degrees {
        let mut ln_ns = Vec::new();
        let mut covers = Vec::new();
        for &k in &exponents {
            let n = 1usize << k;
            let mut gen_rng = SmallRng::seed_from_u64(0xF2_0000 + (r as u64) * 64 + k as u64);
            let g = generators::random_regular(n, r, true, &mut gen_rng)
                .expect("regular graph generation");
            let spec = lanczos_edge_spectrum(&g, 0);
            let gap = spec.gap();
            let est = CoverConfig::default()
                .with_trials(trials)
                .with_seed(0xF2 + k as u64)
                .to_sim(&g, &[0])
                .run();
            let s = est.summary();
            ln_ns.push((n as f64).ln());
            covers.push(s.mean);
            // Theorem 1.2's condition `1−λ > C·sqrt(log n / n)` is
            // asymptotic (C "suitably large"); the margin gap/sqrt(·)
            // must *grow* with n because expander gaps are constant.
            let margin = gap / (cobra_util::math::ln_usize(n) / n as f64).sqrt();
            table.push_row(vec![
                r.to_string(),
                n.to_string(),
                fmt_f(gap),
                fmt_f(margin),
                fmt_f(s.mean),
                fmt_f(s.mean / k as f64),
                fmt_f(bounds::thm_1_2(n, r, gap)),
            ]);
        }
        let (alpha, _, fit) = fit_power_law(&ln_ns, &covers);
        table.note(format!(
            "r = {r}: fitted cover ≈ c·(ln n)^α, α = {} (R² = {}); claim O(log n) ⇒ α ≈ 1",
            fmt_f(alpha),
            fmt_f(fit.r_squared)
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 6, "2 degrees × 3 sizes");
        assert_eq!(t.notes.len(), 2);
    }

    #[test]
    fn gap_condition_margin_grows_with_n() {
        // Constant expander gap vs shrinking sqrt(log n / n): the margin
        // must increase down each degree's sweep, certifying that the
        // Theorem 1.2 condition holds for all large n.
        let t = run(true);
        for r in ["3", "8"] {
            let margins: Vec<f64> = t
                .rows
                .iter()
                .filter(|row| row[0] == r)
                .map(|row| row[3].parse().unwrap())
                .collect();
            assert!(margins.len() >= 2);
            for w in margins.windows(2) {
                assert!(
                    w[1] > w[0] * 0.9,
                    "margin not growing for r={r}: {margins:?}"
                );
            }
        }
    }

    #[test]
    fn cover_within_logarithmic_band() {
        let t = run(true);
        for row in &t.rows {
            let per_log: f64 = row[5].parse().unwrap();
            assert!(
                (0.8..15.0).contains(&per_log),
                "cover/log2n = {per_log} outside O(log n) band: {row:?}"
            );
        }
    }
}
