//! F7 — branching factor `b = 1+ρ` (§6): bounds scale by `1/ρ²`.
//!
//! The paper proves all four theorems survive with the round counts
//! multiplied by `1/ρ²`. We sweep ρ on an expander and a torus and
//! check (a) cover is monotone decreasing in ρ, and (b) the measured
//! slowdown `cover(ρ)/cover(1)` stays below the bound's `1/ρ²` envelope
//! (shape check: fitted exponent of slowdown vs `1/ρ` at most 2).

use crate::cover::CoverConfig;
use crate::report::{fmt_f, Table};
use cobra_graph::{generators, Graph};
use cobra_process::Branching;
use cobra_stats::fit_power_law;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Runs F7 (`quick`: 3 values of ρ on a small expander; full: 5 values
/// on expander + torus).
pub fn run(quick: bool) -> Table {
    let rhos: Vec<f64> = if quick {
        vec![1.0, 0.5, 0.25]
    } else {
        vec![1.0, 0.7, 0.5, 0.3, 0.2]
    };
    let trials = if quick { 6 } else { 20 };
    let graphs: Vec<(&str, Graph)> = {
        let mut v = Vec::new();
        let n = if quick { 128 } else { 512 };
        let mut gen_rng = SmallRng::seed_from_u64(0xF7_0001);
        v.push((
            "random 4-regular",
            generators::random_regular(n, 4, true, &mut gen_rng).expect("expander"),
        ));
        if !quick {
            v.push(("torus 15x15", generators::torus(&[15, 15])));
        }
        v
    };
    let mut table = Table::new(
        "F7",
        "Fractional branching b = 1+ρ: slowdown vs the 1/ρ² bound envelope",
        &[
            "graph",
            "rho",
            "mean cover",
            "slowdown vs rho=1",
            "1/rho²",
            "within envelope",
        ],
    );
    for (label, g) in &graphs {
        let mut base = f64::NAN;
        let mut inv_rhos = Vec::new();
        let mut slowdowns = Vec::new();
        for (i, &rho) in rhos.iter().enumerate() {
            let branching = if rho >= 1.0 {
                Branching::Fixed(2)
            } else {
                Branching::Expected(rho)
            };
            let est = CoverConfig::default()
                .with_branching(branching)
                .with_trials(trials)
                .with_seed(0xF7_10 + i as u64)
                .to_sim(g, &[0])
                .run();
            let mean = est.summary().mean;
            if rho >= 1.0 {
                base = mean;
            }
            let slowdown = mean / base;
            let envelope = 1.0 / (rho * rho);
            inv_rhos.push(1.0 / rho);
            slowdowns.push(slowdown.max(1e-9));
            table.push_row(vec![
                label.to_string(),
                fmt_f(rho),
                fmt_f(mean),
                fmt_f(slowdown),
                fmt_f(envelope),
                // Generous ×2 noise allowance; the claim is an upper bound.
                if slowdown <= 2.0 * envelope {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]);
        }
        if inv_rhos.len() >= 2 {
            let (alpha, _, fit) = fit_power_law(&inv_rhos, &slowdowns);
            table.note(format!(
                "{label}: slowdown ≈ (1/ρ)^α with α = {} (R² = {}); §6 permits at most α = 2",
                fmt_f(alpha),
                fmt_f(fit.r_squared)
            ));
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.notes.len(), 1);
    }

    #[test]
    fn slowdown_within_envelope() {
        let t = run(true);
        for row in &t.rows {
            assert_eq!(row[5], "yes", "slowdown escaped the 1/ρ² envelope: {row:?}");
        }
    }

    #[test]
    fn cover_monotone_in_rho() {
        let t = run(true);
        let covers: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // ρ decreases down the rows; cover must not decrease (noise slack).
        for w in covers.windows(2) {
            assert!(
                w[1] >= w[0] * 0.85,
                "cover decreased as branching shrank: {covers:?}"
            );
        }
    }

    #[test]
    fn fitted_exponent_at_most_two() {
        let t = run(true);
        let alpha: f64 = t.notes[0]
            .split("α = ")
            .nth(1)
            .unwrap()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            alpha <= 2.2,
            "slowdown exponent {alpha} above the §6 envelope"
        );
    }
}
