//! F15 — ablation: the two BIPS round engines.
//!
//! DESIGN.md's implementation claim: literal neighbour sampling costs
//! `O(n·b)` per round while the Bernoulli fast path costs `O(d(A_t))`,
//! with *identical law*. The interesting consequence is a crossover:
//! the fast path wins while the infected set is small
//! (`d(A_t) ≪ n·b`) and loses its edge as `d(A_t)` approaches `2m`.
//! This experiment measures per-round cost at controlled infection
//! sizes and checks the engines agree on the one-round law.

use crate::report::{fmt_f, Table};
use cobra_graph::{generators, VertexId};
use cobra_process::{Bips, BipsMode, Branching, Laziness, ProcessState, StepCtx};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// Runs F15 (`quick`: n = 4096, 200 rounds/point; full: n = 16384, 600).
pub fn run(quick: bool) -> Table {
    let n = if quick { 4096 } else { 16384 };
    let rounds = if quick { 200 } else { 600 };
    let mut gen_rng = SmallRng::seed_from_u64(0x0F15_0001);
    let g = generators::random_regular(n, 3, true, &mut gen_rng).expect("sparse regular graph");
    let fractions = [0.01f64, 0.05, 0.2, 0.5, 0.9];
    let mut table = Table::new(
        "F15",
        "Ablation: BIPS round engines at controlled |A| (literal vs Bernoulli)",
        &[
            "|A|/n",
            "E|A'| (exact)",
            "E|A'| (fast)",
            "rel. diff",
            "µs/round (exact)",
            "µs/round (fast)",
            "exact/fast",
        ],
    );
    for (i, &frac) in fractions.iter().enumerate() {
        let size = ((n as f64 * frac) as usize).max(1);
        // One fixed conditioned set per fraction: both engines see the
        // same configuration, so the law comparison is per-configuration.
        let mut set_rng = SmallRng::seed_from_u64(0x0F15_0100 + i as u64);
        let mut all: Vec<VertexId> = (0..n as VertexId).collect();
        all.shuffle(&mut set_rng);
        all.truncate(size);

        let run_engine = |mode: BipsMode, salt: u64| -> (f64, f64) {
            let mut ctx = StepCtx::seeded(0x0F15_0200 + salt);
            let mut p = Bips::new(&g, all[0], Branching::B2, Laziness::None, mode);
            let mut next_sizes = 0.0f64;
            let start = Instant::now();
            for _ in 0..rounds {
                p.set_infected_state(&all);
                p.step(&mut ctx);
                next_sizes += p.infected_count() as f64;
            }
            let micros = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
            (next_sizes / rounds as f64, micros)
        };
        let (exact_mean, exact_us) = run_engine(BipsMode::ExactSampling, 2 * i as u64);
        let (fast_mean, fast_us) = run_engine(BipsMode::Bernoulli, 2 * i as u64 + 1);
        table.push_row(vec![
            fmt_f(frac),
            fmt_f(exact_mean),
            fmt_f(fast_mean),
            fmt_f((exact_mean - fast_mean).abs() / exact_mean),
            fmt_f(exact_us),
            fmt_f(fast_us),
            fmt_f(exact_us / fast_us.max(1e-9)),
        ]);
    }
    table.note(format!(
        "random 3-regular graph, n = {n}; per-round timings averaged over {rounds} rounds \
         from the same conditioned state"
    ));
    table.note(
        "claim: fast path costs O(d(A_t)) vs O(n·b) — the exact/fast ratio is large at \
         small |A| and decays towards O(1) as d(A_t) approaches 2m"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_one_round_law() {
        let t = run(true);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let rel: f64 = row[3].parse().unwrap();
            assert!(rel < 0.05, "engines disagree on E|A'|: {row:?}");
        }
    }

    #[test]
    fn fast_path_wins_when_infection_is_small() {
        let t = run(true);
        // At |A|/n = 1% on a 3-regular graph the draw-count gap is ~60x;
        // even heavily loaded CI machines keep the sign.
        let ratio: f64 = t.rows[0][6].parse().unwrap();
        assert!(ratio > 1.0, "fast path not faster at 1% infection: {ratio}");
    }

    #[test]
    fn advantage_decays_with_infection_size() {
        let t = run(true);
        let first: f64 = t.rows[0][6].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[6].parse().unwrap();
        assert!(
            first > last,
            "speedup should shrink as d(A_t) grows: {first} -> {last}"
        );
    }
}
