//! F12 — baseline separation and the lower bound.
//!
//! §1 positions COBRA against the `b = 1` random walk (`Ω(n log n)`
//! cover on every graph) and the multiple-walk/rumour-spreading
//! literature. This table races SRW, 4 independent walks, PUSH gossip
//! and COBRA (`b = 2, 3`) on four structurally different graphs and
//! also records the `max(log₂ n, Diam)` lower bound of §1.

use crate::bounds;
use crate::report::{fmt_f, Table};
use crate::sim::SimSpec;
use cobra_graph::{generators, props, Graph};
use cobra_mc::{Completion, StopWhen};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn graphs(quick: bool) -> Vec<(&'static str, Graph)> {
    let mut rng = SmallRng::seed_from_u64(0xF12_001);
    if quick {
        vec![
            ("K_64", generators::complete(64)),
            (
                "rand 4-reg n=64",
                generators::random_regular(64, 4, true, &mut rng).unwrap(),
            ),
            ("torus 9x9", generators::torus(&[9, 9])),
            ("path n=48", generators::path(48)),
        ]
    } else {
        vec![
            ("K_256", generators::complete(256)),
            (
                "rand 4-reg n=256",
                generators::random_regular(256, 4, true, &mut rng).unwrap(),
            ),
            ("torus 15x15", generators::torus(&[15, 15])),
            ("path n=128", generators::path(128)),
        ]
    }
}

/// Mean `(rounds, transmissions)` over *completed* trials for one
/// process spec racing on `g` — one declarative `SimSpec` per
/// contender, all through the engine.
fn race(g: &Graph, process: &str, trials: usize, seed: u64, cap: usize) -> (f64, f64) {
    let outcomes = SimSpec::new(g, process.parse().expect("valid process spec"))
        .with_trials(trials)
        .with_seed(seed)
        .with_cap(cap)
        .run_observed(StopWhen::Complete, |_| Completion)
        .expect("static spec");
    // Both columns average over the same population: completed trials.
    let completed: Vec<_> = outcomes.iter().filter(|o| o.rounds.is_some()).collect();
    assert!(!completed.is_empty(), "every trial censored; raise the cap");
    let n = completed.len() as f64;
    let rounds = completed
        .iter()
        .map(|o| o.rounds.unwrap() as f64)
        .sum::<f64>()
        / n;
    let tx = completed
        .iter()
        .map(|o| o.transmissions as f64)
        .sum::<f64>()
        / n;
    (rounds, tx)
}

/// Runs F12 (`quick`: small graphs, 5 trials; full: 15 trials).
pub fn run(quick: bool) -> Table {
    let trials = if quick { 5 } else { 15 };
    let mut table = Table::new(
        "F12",
        "Baselines: rounds (and transmissions) to cover/broadcast",
        &[
            "graph",
            "lower bnd",
            "SRW",
            "4 walks",
            "PUSH",
            "COBRA b=2",
            "COBRA b=3",
            "tx SRW",
            "tx COBRA b=2",
        ],
    );
    for (gi, (label, g)) in graphs(quick).into_iter().enumerate() {
        let n = g.n();
        let diam = props::diameter(&g).expect("connected");
        let cap = 4000 * n * (cobra_util::math::log2_ceil(n) as usize + 1) + 100_000;
        let seed = 0xF12_100 + gi as u64 * 7919;

        let (srw_rounds, srw_tx) = race(&g, "rw", trials, seed, cap);
        let (mw_rounds, _) = race(&g, "walks:4", trials, seed ^ 1, cap);
        let (push_rounds, _) = race(&g, "gossip:push", trials, seed ^ 2, cap);
        let (b2_rounds, b2_tx) = race(&g, "cobra:b2", trials, seed ^ 3, cap);
        let (b3_rounds, _) = race(&g, "cobra:b3", trials, seed ^ 4, cap);

        table.push_row(vec![
            label.to_string(),
            fmt_f(bounds::lower_bound(n, diam)),
            fmt_f(srw_rounds),
            fmt_f(mw_rounds),
            fmt_f(push_rounds),
            fmt_f(b2_rounds),
            fmt_f(b3_rounds),
            fmt_f(srw_tx),
            fmt_f(b2_tx),
        ]);
    }
    table.note(
        "expected ordering: SRW ≫ 4 walks ≫ COBRA b=2 ≈ PUSH on expanders; \
         COBRA respects the max(log₂n, Diam) lower bound everywhere"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn cobra_beats_srw_everywhere() {
        let t = run(true);
        for row in &t.rows {
            let srw: f64 = row[2].parse().unwrap();
            let b2: f64 = row[5].parse().unwrap();
            assert!(
                b2 < srw,
                "COBRA not faster than SRW on {}: {b2} vs {srw}",
                row[0]
            );
        }
    }

    #[test]
    fn cobra_respects_lower_bound() {
        let t = run(true);
        for row in &t.rows {
            let lb: f64 = row[1].parse().unwrap();
            let b2: f64 = row[5].parse().unwrap();
            assert!(
                b2 + 1.0 >= lb,
                "COBRA below lower bound on {}: {b2} < {lb}",
                row[0]
            );
        }
    }

    #[test]
    fn more_branching_is_weakly_faster() {
        let t = run(true);
        for row in &t.rows {
            let b2: f64 = row[5].parse().unwrap();
            let b3: f64 = row[6].parse().unwrap();
            assert!(
                b3 <= b2 * 1.25,
                "b=3 much slower than b=2 on {}: {b3} vs {b2}",
                row[0]
            );
        }
    }

    #[test]
    fn srw_separation_on_complete_graph() {
        // K_n: SRW is Θ(n log n), COBRA is Θ(log n) — expect a big gap.
        let t = run(true);
        let row = &t.rows[0];
        let srw: f64 = row[2].parse().unwrap();
        let b2: f64 = row[5].parse().unwrap();
        assert!(srw / b2 > 5.0, "separation too small on K_n: {srw} / {b2}");
    }
}
