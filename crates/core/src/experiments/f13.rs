//! F13 — the phase structure of BIPS on regular graphs (§4–§5).
//!
//! The paper's analysis splits a BIPS run into an initial phase (growth
//! rate `Ω(1/r)` per round up to size ≈ `1/(1−λ)`), a middle doubling
//! phase, and a completion phase of `O(log n/(1−λ))` rounds from size
//! `n/4`. We record mean first-passage rounds at the phase boundaries
//! and check the completion tail scales with `log n/(1−λ)`.

use crate::report::{fmt_f, Table};
use cobra_graph::{generators, Graph};
use cobra_process::{Bips, BipsMode, Branching, Laziness, ProcessState, ProcessView, StepCtx};
use cobra_spectral::lanczos_edge_spectrum;
use cobra_util::math::ln_usize;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn cases(quick: bool) -> Vec<(&'static str, Graph)> {
    let mut rng = SmallRng::seed_from_u64(0xF13_001);
    if quick {
        vec![
            (
                "rand 4-reg n=128",
                generators::random_regular(128, 4, true, &mut rng).unwrap(),
            ),
            ("ring_of_cliques 8x6", generators::ring_of_cliques(8, 6)),
            ("cycle_power n=120 k=2", generators::cycle_power(120, 2)),
        ]
    } else {
        vec![
            (
                "rand 4-reg n=1024",
                generators::random_regular(1024, 4, true, &mut rng).unwrap(),
            ),
            ("ring_of_cliques 32x6", generators::ring_of_cliques(32, 6)),
            ("cycle_power n=960 k=2", generators::cycle_power(960, 2)),
        ]
    }
}

/// Runs F13 (`quick`: 6 trials; full: 15).
pub fn run(quick: bool) -> Table {
    let trials = if quick { 6 } else { 15 };
    let mut table = Table::new(
        "F13",
        "BIPS phase structure: first-passage rounds at phase boundaries",
        &[
            "graph",
            "1-λ",
            "t(|A|≥log n)",
            "t(|A|≥n/4)",
            "t(|A|≥n/2)",
            "t(full)",
            "tail = t(full)−t(n/2)",
            "tail·(1−λ)/ln n",
        ],
    );
    for (ci, (label, g)) in cases(quick).into_iter().enumerate() {
        let n = g.n();
        let gap = lanczos_edge_spectrum(&g, 0).gap();
        let thresholds = [
            (ln_usize(n).ceil() as usize).max(2),
            n.div_ceil(4),
            n.div_ceil(2),
            n,
        ];
        let mut sums = [0.0f64; 4];
        for trial in 0..trials {
            let mut ctx = StepCtx::seeded(0xF13_100 + (ci * 128 + trial) as u64);
            let mut p = Bips::new(&g, 0, Branching::B2, Laziness::None, BipsMode::Bernoulli);
            let mut reached = [None::<usize>; 4];
            let cap = 4000 * n + 100_000;
            while reached.iter().any(Option::is_none) && p.rounds() < cap {
                p.step(&mut ctx);
                let sz = p.infected_count();
                for (i, &th) in thresholds.iter().enumerate() {
                    if reached[i].is_none() && sz >= th {
                        reached[i] = Some(p.rounds());
                    }
                }
            }
            for (i, r) in reached.iter().enumerate() {
                sums[i] += r.expect("cap far above the Theorem 1.5 bound") as f64;
            }
        }
        let means: Vec<f64> = sums.iter().map(|s| s / trials as f64).collect();
        let tail = means[3] - means[2];
        table.push_row(vec![
            label.to_string(),
            fmt_f(gap),
            fmt_f(means[0]),
            fmt_f(means[1]),
            fmt_f(means[2]),
            fmt_f(means[3]),
            fmt_f(tail),
            fmt_f(tail * gap / ln_usize(n)),
        ]);
    }
    table.note(
        "Lemma 4.3 shape: the completion tail is O(log n/(1−λ)), so the last column must \
         stay O(1) across graphs whose gaps differ by an order of magnitude"
            .to_string(),
    );
    table.note(
        "phase boundaries are monotone by construction; the doubling middle phase shows as \
         t(n/2) − t(n/4) ≪ t(n/4)  on expanders"
            .to_string(),
    );
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
    }

    #[test]
    fn phase_times_are_monotone() {
        let t = run(true);
        for row in &t.rows {
            let a: f64 = row[2].parse().unwrap();
            let b: f64 = row[3].parse().unwrap();
            let c: f64 = row[4].parse().unwrap();
            let d: f64 = row[5].parse().unwrap();
            assert!(a <= b && b <= c && c <= d, "phases out of order: {row:?}");
        }
    }

    #[test]
    fn completion_tail_normalised_is_order_one() {
        let t = run(true);
        for row in &t.rows {
            let norm_tail: f64 = row[7].parse().unwrap();
            assert!(
                norm_tail < 30.0,
                "tail·(1−λ)/ln n = {norm_tail}: completion phase shape violated: {row:?}"
            );
        }
    }
}
