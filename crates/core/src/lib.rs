//! `cobra` — the public API of the SPAA 2017 reproduction.
//!
//! This crate turns the substrates (graphs, spectra, processes, the
//! Monte-Carlo engine) into the objects the paper talks about. The
//! single entry point is the declarative [`sim::SimSpec`]: a graph spec
//! × a process spec × an objective, executed by the unified engine.
//!
//! # Quick start
//!
//! ```
//! use cobra::sim::SimSpec;
//!
//! // COBRA b=2 cover time on K_64, 20 seeded trials. Both coordinates
//! // are plain strings, so the same scenario runs from the CLI as
//! // `cobra-exps run --graph complete:64 --process cobra:b2`.
//! let est = SimSpec::parse("complete:64", "cobra:b2")
//!     .unwrap()
//!     .with_trials(20)
//!     .run();
//! let summary = est.summary();
//! // K_64 covers in Θ(log n) rounds; the mean sits well under 50.
//! assert!(summary.mean < 50.0);
//! assert_eq!(est.censored, 0);
//! ```
//!
//! Modules:
//!
//! * [`sim`] — [`sim::SimSpec`] (the builder), [`sim::Objective`] (the
//!   first-class estimand: `cover`, `hit:V`/`hit:far`, `infection:T`,
//!   `duality:h{..}`, `trajectory`), [`sim::Measurement`] /
//!   [`sim::Estimate`] (the streamed and sample-vector results), and
//!   the shared cap policy [`sim::resolve_cap`].
//! * [`cover`] — COBRA cover-time and hitting-time estimation
//!   (Theorems 1.1/1.2 measure `cover(u)`); legacy shims over `SimSpec`.
//! * [`infection`] — BIPS infection-time estimation and infection
//!   trajectories (Theorems 1.4/1.5 measure `infec(v)`).
//! * [`duality`] — two-sided estimation of the duality identity
//!   (Theorem 1.3) with statistical equality tests.
//! * [`bounds`] — every bound named in the paper as an explicit,
//!   constant-free formula: the two new bounds, the prior bounds they
//!   improve, the `max(log₂ n, Diam)` lower bound, and the `1/ρ²`
//!   branching-factor scaling of §6.
//! * [`experiments`] — the experiment registry (`T1`, `F1`–`F16`): each
//!   regenerates one quantitative claim of the paper as a [`report::Table`].
//! * [`report`] — plain/markdown/CSV table rendering for the harness.

pub mod bounds;
pub mod cover;
pub mod duality;
pub mod experiments;
pub mod infection;
pub mod sim;

/// Result tables (re-exported from [`cobra_stats::report`], where they
/// moved so the campaign layer below this crate can produce them too).
pub mod report {
    pub use cobra_stats::report::{fmt_f, Table};
}

pub use cobra_graph::Backend;
pub use cover::{CoverConfig, CoverEstimate};
pub use duality::{duality_check, DualityConfig, DualityReport};
pub use infection::{infection_trajectory, InfectionConfig};
pub use report::Table;
pub use sim::{
    Estimate, GraphSource, HitTarget, MaterializedTopology, Measurement, Objective, ResolvedRun,
    SimError, SimSpec, StoppingEstimate, TrajectoryEstimate,
};
