//! `cobra` — the public API of the SPAA 2017 reproduction.
//!
//! This crate turns the substrates (graphs, spectra, processes, the
//! Monte-Carlo engine) into the objects the paper talks about:
//!
//! * [`cover`] — COBRA cover-time and hitting-time estimation
//!   (Theorems 1.1/1.2 measure `cover(u)`).
//! * [`infection`] — BIPS infection-time estimation and infection
//!   trajectories (Theorems 1.4/1.5 measure `infec(v)`).
//! * [`duality`] — two-sided estimation of the duality identity
//!   (Theorem 1.3) with statistical equality tests.
//! * [`bounds`] — every bound named in the paper as an explicit,
//!   constant-free formula: the two new bounds, the prior bounds they
//!   improve, the `max(log₂ n, Diam)` lower bound, and the `1/ρ²`
//!   branching-factor scaling of §6.
//! * [`experiments`] — the experiment registry (`T1`, `F1`–`F13`): each
//!   regenerates one quantitative claim of the paper as a [`report::Table`].
//! * [`report`] — plain/markdown/CSV table rendering for the harness.
//!
//! # Quick start
//!
//! ```
//! use cobra::cover::{cobra_cover_samples, CoverConfig};
//! use cobra_graph::generators;
//!
//! let g = generators::complete(64);
//! let est = cobra_cover_samples(&g, 0, CoverConfig::default().with_trials(20));
//! let summary = est.summary();
//! // K_64 covers in Θ(log n) rounds; the mean sits well under 50.
//! assert!(summary.mean < 50.0);
//! ```

pub mod bounds;
pub mod cover;
pub mod duality;
pub mod experiments;
pub mod infection;
pub mod report;

pub use cover::{cobra_cover_samples, CoverConfig, CoverEstimate};
pub use duality::{duality_check, DualityConfig, DualityReport};
pub use infection::{bips_infection_samples, infection_trajectory, InfectionConfig};
pub use report::Table;
