//! COBRA cover-time and hitting-time estimation.

use cobra_graph::{Graph, VertexId};
use cobra_mc::{run_trials, RunConfig};
use cobra_process::{Branching, Cobra, Laziness};
use cobra_stats::Summary;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Configuration for cover-time estimation.
#[derive(Debug, Clone, Copy)]
pub struct CoverConfig {
    pub branching: Branching,
    pub laziness: Laziness,
    /// Independent Monte-Carlo trials.
    pub trials: usize,
    /// Master seed for the trial-seed derivation.
    pub master_seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Hard round cap per trial; `None` derives a generous cap from the
    /// Theorem 1.1 bound.
    pub cap: Option<usize>,
}

impl Default for CoverConfig {
    fn default() -> Self {
        CoverConfig {
            branching: Branching::B2,
            laziness: Laziness::None,
            trials: 30,
            master_seed: 0xC0B7A,
            threads: 0,
            cap: None,
        }
    }
}

impl CoverConfig {
    /// Sets the trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the branching factor.
    pub fn with_branching(mut self, b: Branching) -> Self {
        self.branching = b;
        self
    }

    /// Switches to lazy picks.
    pub fn lazy(mut self) -> Self {
        self.laziness = Laziness::Half;
        self
    }

    /// Sets an explicit round cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// The effective cap for graph `g`: explicit, or 500× the Theorem 1.1
    /// bound (divided by ρ² for fractional branching) plus slack.
    pub fn effective_cap(&self, g: &Graph) -> usize {
        if let Some(c) = self.cap {
            return c;
        }
        let base = crate::bounds::thm_1_1(g.n().max(2), g.m(), g.max_degree());
        let rho_penalty = match self.branching {
            Branching::Expected(rho) => 1.0 / (rho * rho),
            Branching::Fixed(1) => {
                // b = 1 is a random walk: Θ(n·m) worst-case cover, far
                // beyond the COBRA bound. Scale accordingly.
                (g.n() * g.m()) as f64 / base.max(1.0) + 1.0
            }
            Branching::Fixed(_) => 1.0,
        };
        (500.0 * base * rho_penalty) as usize + 10_000
    }
}

/// The outcome of a batch of cover-time trials.
#[derive(Debug, Clone)]
pub struct CoverEstimate {
    /// Rounds-to-cover for each completed trial.
    pub samples: Vec<usize>,
    /// Trials that hit the cap without covering.
    pub censored: usize,
    /// The cap that was in force.
    pub cap: usize,
}

impl CoverEstimate {
    /// Summary statistics of the completed trials. Panics if every
    /// trial was censored (the experiment must then raise its cap).
    pub fn summary(&self) -> Summary {
        assert!(
            !self.samples.is_empty(),
            "all {} trials censored at cap {}",
            self.censored,
            self.cap
        );
        let xs: Vec<f64> = self.samples.iter().map(|&s| s as f64).collect();
        Summary::from_samples(&xs)
    }

    /// Samples as f64 (for fits and KS tests).
    pub fn samples_f64(&self) -> Vec<f64> {
        self.samples.iter().map(|&s| s as f64).collect()
    }
}

/// Estimates `cover(start)` for the COBRA process on `g` by independent
/// trials (parallelised, deterministic in `cfg.master_seed`).
pub fn cobra_cover_samples(g: &Graph, start: VertexId, cfg: CoverConfig) -> CoverEstimate {
    let cap = cfg.effective_cap(g);
    let outcomes: Vec<Option<usize>> = run_trials(
        RunConfig::new(cfg.trials, cfg.master_seed).with_threads(cfg.threads),
        |seed, _| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut process = Cobra::new(g, &[start], cfg.branching, cfg.laziness);
            process.run_until_cover(&mut rng, cap)
        },
    );
    collect_outcomes(outcomes, cap)
}

/// Estimates the hitting time `Hit_C(target)` of COBRA started from the
/// set `C`.
pub fn cobra_hit_samples(
    g: &Graph,
    start_set: &[VertexId],
    target: VertexId,
    cfg: CoverConfig,
) -> CoverEstimate {
    let cap = cfg.effective_cap(g);
    let outcomes: Vec<Option<usize>> = run_trials(
        RunConfig::new(cfg.trials, cfg.master_seed).with_threads(cfg.threads),
        |seed, _| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut process = Cobra::new(g, start_set, cfg.branching, cfg.laziness);
            process.run_until_hit(target, &mut rng, cap)
        },
    );
    collect_outcomes(outcomes, cap)
}

/// Scans all start vertices with a few trials each and returns
/// `(worst_vertex, its mean cover)` — the `max_u COVER(u)` of the
/// paper's cover-time definition, at estimation fidelity `probe_trials`.
pub fn worst_start_vertex(g: &Graph, cfg: CoverConfig, probe_trials: usize) -> (VertexId, f64) {
    assert!(g.n() >= 1);
    let mut worst = (0 as VertexId, f64::NEG_INFINITY);
    for v in 0..g.n() as VertexId {
        let est = cobra_cover_samples(
            g,
            v,
            cfg.with_trials(probe_trials).with_seed(cfg.master_seed ^ (v as u64).wrapping_mul(0x9E37)),
        );
        let mean = est.summary().mean;
        if mean > worst.1 {
            worst = (v, mean);
        }
    }
    worst
}

fn collect_outcomes(outcomes: Vec<Option<usize>>, cap: usize) -> CoverEstimate {
    let mut samples = Vec::with_capacity(outcomes.len());
    let mut censored = 0;
    for o in outcomes {
        match o {
            Some(r) => samples.push(r),
            None => censored += 1,
        }
    }
    CoverEstimate { samples, censored, cap }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;

    #[test]
    fn complete_graph_cover_is_logarithmic() {
        let g = generators::complete(128);
        let est = cobra_cover_samples(&g, 0, CoverConfig::default().with_trials(20));
        assert_eq!(est.censored, 0);
        let s = est.summary();
        assert!(s.mean >= 7.0, "cannot beat log2(128): {}", s.mean);
        assert!(s.mean <= 60.0, "K_128 mean cover too slow: {}", s.mean);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::torus(&[5, 5]);
        let a = cobra_cover_samples(&g, 0, CoverConfig::default().with_trials(8));
        let b = cobra_cover_samples(&g, 0, CoverConfig::default().with_trials(8));
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = generators::cycle(32);
        let mut cfg = CoverConfig::default().with_trials(12);
        cfg.threads = 1;
        let seq = cobra_cover_samples(&g, 0, cfg);
        cfg.threads = 4;
        let par = cobra_cover_samples(&g, 0, cfg);
        assert_eq!(seq.samples, par.samples);
    }

    #[test]
    fn explicit_cap_censors() {
        let g = generators::path(128);
        let est = cobra_cover_samples(&g, 0, CoverConfig::default().with_trials(5).with_cap(3));
        assert_eq!(est.censored, 5);
        assert!(est.samples.is_empty());
    }

    #[test]
    #[should_panic(expected = "censored")]
    fn summary_of_all_censored_panics() {
        let g = generators::path(128);
        let est = cobra_cover_samples(&g, 0, CoverConfig::default().with_trials(3).with_cap(2));
        est.summary();
    }

    #[test]
    fn hit_time_zero_when_target_in_start_set() {
        let g = generators::cycle(10);
        let est = cobra_hit_samples(&g, &[2, 7], 7, CoverConfig::default().with_trials(4));
        assert!(est.samples.iter().all(|&s| s == 0));
    }

    #[test]
    fn worst_start_on_lollipop_is_in_the_clique() {
        // Hitting the stick tip from inside the clique is the slow
        // direction; the worst start must not be the tip itself.
        let g = generators::lollipop(8, 8);
        let tip = (g.n() - 1) as VertexId;
        let (worst, mean_from_worst) = worst_start_vertex(&g, CoverConfig::default(), 6);
        let tip_mean = cobra_cover_samples(&g, tip, CoverConfig::default().with_trials(12))
            .summary()
            .mean;
        assert_ne!(worst, tip, "tip should be among the easier starts");
        assert!(mean_from_worst >= tip_mean * 0.8, "scan found a non-worst vertex");
    }

    #[test]
    fn default_cap_allows_slow_graphs() {
        // Path cover is Θ(n) ≪ default cap; no censoring expected.
        let g = generators::path(64);
        let est = cobra_cover_samples(&g, 0, CoverConfig::default().with_trials(6));
        assert_eq!(est.censored, 0);
    }

    #[test]
    fn b1_cap_scales_to_random_walk_times() {
        // b = 1 on a cycle is a plain random walk with Θ(n²) cover; the
        // derived cap must accommodate it.
        let g = generators::cycle(24);
        let cfg = CoverConfig::default()
            .with_branching(Branching::Fixed(1))
            .with_trials(4);
        let est = cobra_cover_samples(&g, 0, cfg);
        assert_eq!(est.censored, 0, "cap {} too small for SRW", est.cap);
    }
}
