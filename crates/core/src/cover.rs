//! COBRA cover-time and hitting-time estimation — legacy shims.
//!
//! The cover and hitting estimands are first-class
//! [`Objective`](crate::sim::Objective) values now (`"cover"`,
//! `"hit:V"`, `"hit:far"`): build a [`SimSpec`],
//! set the objective, and call
//! [`SimSpec::measure`](crate::sim::SimSpec::measure) — one unified run
//! path, streamed reduction, sweepable from the campaign grammar. This
//! module survives for one release as the thin deprecated layer over
//! that path: [`CoverConfig`] is the legacy configuration carrier
//! (converting via [`CoverConfig::to_sim`]) and contains no trial loop
//! or estimator logic of its own.

use crate::sim::{resolve_cap, Estimate, SimSpec};
use cobra_graph::{Graph, VertexId};
use cobra_process::{Branching, Laziness, ProcessSpec};

/// Configuration for cover-time estimation (legacy; prefer building a
/// [`SimSpec`] directly).
#[derive(Debug, Clone, Copy)]
pub struct CoverConfig {
    pub branching: Branching,
    pub laziness: Laziness,
    /// Independent Monte-Carlo trials.
    pub trials: usize,
    /// Master seed for the trial-seed derivation.
    pub master_seed: u64,
    /// Worker threads (0 = auto).
    pub threads: usize,
    /// Hard round cap per trial; `None` derives one from the paper's
    /// bounds (see [`resolve_cap`]).
    pub cap: Option<usize>,
}

impl Default for CoverConfig {
    fn default() -> Self {
        CoverConfig {
            branching: Branching::B2,
            laziness: Laziness::None,
            trials: 30,
            master_seed: 0xC0B7A,
            threads: 0,
            cap: None,
        }
    }
}

impl CoverConfig {
    /// Sets the trial count.
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Sets the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Sets the branching factor.
    pub fn with_branching(mut self, b: Branching) -> Self {
        self.branching = b;
        self
    }

    /// Switches to lazy picks.
    pub fn lazy(mut self) -> Self {
        self.laziness = Laziness::Half;
        self
    }

    /// Sets an explicit round cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = Some(cap);
        self
    }

    /// The process this configuration denotes.
    pub fn process_spec(&self) -> ProcessSpec {
        ProcessSpec::Cobra {
            branching: self.branching,
            laziness: self.laziness,
        }
    }

    /// The equivalent [`SimSpec`] on `g` from the given start set.
    pub fn to_sim<'g>(&self, g: &'g Graph, start: &[VertexId]) -> SimSpec<'g> {
        let mut spec = SimSpec::new(g, self.process_spec())
            .with_starts(start)
            .with_trials(self.trials)
            .with_seed(self.master_seed)
            .with_threads(self.threads);
        spec.cap = self.cap;
        spec
    }

    /// The effective cap for graph `g` — the single cap policy shared
    /// by the whole `SimSpec` API. For `b = 1` (a plain random walk)
    /// the cap is derived directly from the `Θ(n·m)` worst-case cover
    /// time of random walks rather than from the COBRA bound; see
    /// [`resolve_cap`] for the exact formulas.
    pub fn effective_cap(&self, g: &Graph) -> usize {
        resolve_cap(g, &self.process_spec(), self.cap)
    }
}

/// The outcome of a batch of cover-time trials — an alias of the
/// unified [`Estimate`].
pub type CoverEstimate = Estimate;

/// Scans all start vertices with a few trials each and returns
/// `(worst_vertex, its mean cover)` — the `max_u COVER(u)` of the
/// paper's cover-time definition, at estimation fidelity `probe_trials`.
pub fn worst_start_vertex(g: &Graph, cfg: CoverConfig, probe_trials: usize) -> (VertexId, f64) {
    assert!(g.n() >= 1);
    let mut worst = (0 as VertexId, f64::NEG_INFINITY);
    for v in 0..g.n() as VertexId {
        let est = cfg
            .to_sim(g, &[v])
            .with_trials(probe_trials)
            .with_seed(cfg.master_seed ^ (v as u64).wrapping_mul(0x9E37))
            .run();
        let mean = est.summary().mean;
        if mean > worst.1 {
            worst = (v, mean);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::generators;

    fn cover(g: &Graph, start: VertexId, cfg: CoverConfig) -> CoverEstimate {
        cfg.to_sim(g, &[start]).run()
    }

    #[test]
    fn complete_graph_cover_is_logarithmic() {
        let g = generators::complete(128);
        let est = cover(&g, 0, CoverConfig::default().with_trials(20));
        assert_eq!(est.censored, 0);
        let s = est.summary();
        assert!(s.mean >= 7.0, "cannot beat log2(128): {}", s.mean);
        assert!(s.mean <= 60.0, "K_128 mean cover too slow: {}", s.mean);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::torus(&[5, 5]);
        let a = cover(&g, 0, CoverConfig::default().with_trials(8));
        let b = cover(&g, 0, CoverConfig::default().with_trials(8));
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let g = generators::cycle(32);
        let mut cfg = CoverConfig::default().with_trials(12);
        cfg.threads = 1;
        let seq = cover(&g, 0, cfg);
        cfg.threads = 4;
        let par = cover(&g, 0, cfg);
        assert_eq!(seq.samples, par.samples);
    }

    #[test]
    fn explicit_cap_censors() {
        let g = generators::path(128);
        let est = cover(&g, 0, CoverConfig::default().with_trials(5).with_cap(3));
        assert_eq!(est.censored, 5);
        assert!(est.samples.is_empty());
    }

    #[test]
    #[should_panic(expected = "censored")]
    fn summary_of_all_censored_panics() {
        let g = generators::path(128);
        let est = cover(&g, 0, CoverConfig::default().with_trials(3).with_cap(2));
        est.summary();
    }

    #[test]
    fn hit_time_zero_when_target_in_start_set() {
        let g = generators::cycle(10);
        let est = CoverConfig::default()
            .with_trials(4)
            .to_sim(&g, &[2, 7])
            .reaching(7)
            .run();
        assert!(est.samples.iter().all(|&s| s == 0));
    }

    #[test]
    fn worst_start_on_lollipop_is_in_the_clique() {
        // Hitting the stick tip from inside the clique is the slow
        // direction; the worst start must not be the tip itself.
        let g = generators::lollipop(8, 8);
        let tip = (g.n() - 1) as VertexId;
        let (worst, mean_from_worst) = worst_start_vertex(&g, CoverConfig::default(), 6);
        let tip_mean = cover(&g, tip, CoverConfig::default().with_trials(12))
            .summary()
            .mean;
        assert_ne!(worst, tip, "tip should be among the easier starts");
        assert!(
            mean_from_worst >= tip_mean * 0.8,
            "scan found a non-worst vertex"
        );
    }

    #[test]
    fn default_cap_allows_slow_graphs() {
        // Path cover is Θ(n) ≪ default cap; no censoring expected.
        let g = generators::path(64);
        let est = cover(&g, 0, CoverConfig::default().with_trials(6));
        assert_eq!(est.censored, 0);
    }

    #[test]
    fn b1_cap_scales_to_random_walk_times() {
        // b = 1 on a cycle is a plain random walk with Θ(n²) cover; the
        // derived cap must accommodate it.
        let g = generators::cycle(24);
        let cfg = CoverConfig::default()
            .with_branching(Branching::Fixed(1))
            .with_trials(4);
        let est = cover(&g, 0, cfg);
        assert_eq!(est.censored, 0, "cap {} too small for SRW", est.cap);
    }

    #[test]
    fn b1_cap_is_derived_from_n_times_m() {
        // Regression for the cap audit: the b = 1 cap must be the
        // Θ(n·m) walk cap — an explicit formula, not a multiplicative
        // fudge of the COBRA bound — and must dominate the b = 2 cap on
        // sparse graphs while staying proportionate.
        let g = generators::cycle(64);
        let b1 = CoverConfig::default().with_branching(Branching::Fixed(1));
        let b2 = CoverConfig::default().with_branching(Branching::Fixed(2));
        let cap1 = b1.effective_cap(&g);
        let cap2 = b2.effective_cap(&g);
        assert_eq!(
            cap1,
            32 * g.n() * g.m() + 10_000,
            "b=1 cap is the documented walk formula"
        );
        assert!(
            cap1 as f64 >= 2.0 * (g.n() * g.m()) as f64,
            "b=1 cap must cover the 2·n·m expected walk cover time"
        );
        assert!(
            cap1 > cap2,
            "walk cap must exceed the COBRA cap on a cycle: {cap1} vs {cap2}"
        );
        // An explicit cap still wins for both.
        assert_eq!(b1.with_cap(123).effective_cap(&g), 123);
        assert_eq!(b2.with_cap(123).effective_cap(&g), 123);
    }
}
