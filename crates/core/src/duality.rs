//! Two-sided estimation of the duality theorem (Theorem 1.3).
//!
//! For every source `v`, start set `C` and horizon `T`:
//!
//! ```text
//! P̂(Hit(v) > T | C₀ = C)  =  P(C ∩ A_T = ∅ | A₀ = {v})
//! ```
//!
//! The left side is measured on COBRA sample paths (did the walk started
//! from `C` reach `v` within `T` rounds?), the right side on BIPS sample
//! paths (is `C` disjoint from the infected set at round `T`?). The two
//! Monte-Carlo proportions are compared with a two-proportion z-test per
//! horizon; under a correct implementation every |z| stays at noise
//! level for every `T` simultaneously (up to multiplicity).
//!
//! The check is a first-class [`Objective`](crate::sim::Objective) —
//! `"duality:h{8,16,32}"` — so the usual entry point is a
//! [`SimSpec`](crate::sim::SimSpec) with that objective and a
//! [`SimSpec::measure`](crate::sim::SimSpec::measure) call (the spec's
//! start set is `C`, its branching factor comes from the process, and
//! the source `v` resolves to the BFS-farthest vertex). [`duality_check`]
//! remains the explicit-source form the objective path delegates to.
//!
//! Both sides run through the unified engine: the COBRA side is a plain
//! hitting-time run (stop when `v` is reached), the BIPS side a
//! fixed-horizon run with a round-snapshot [`Observer`] checking
//! disjointness at each horizon — no bespoke trial loop on either side,
//! and both sides are generic over the graph backend.

use crate::report::{fmt_f, Table};
use crate::sim::Estimate;
use cobra_graph::{Topology, VertexId};
use cobra_mc::{Engine, Observer, StopWhen, TrialOutcome};
use cobra_process::{BipsMode, Branching, Laziness, ProcessSpec, ProcessView};
use cobra_util::BitSet;

/// Configuration of a duality check.
#[derive(Debug, Clone)]
pub struct DualityConfig {
    /// Branching factor (the theorem holds for any `b ≥ 1`, including
    /// the fractional `1+ρ` of §6).
    pub branching: Branching,
    /// Trials per side.
    pub trials: usize,
    /// Horizons `T` to evaluate, in nondecreasing order.
    pub horizons: Vec<usize>,
    pub master_seed: u64,
    pub threads: usize,
}

impl Default for DualityConfig {
    fn default() -> Self {
        DualityConfig {
            branching: Branching::B2,
            trials: 2000,
            horizons: vec![0, 1, 2, 3, 4, 6, 8, 12],
            master_seed: 0xD0A1,
            threads: 0,
        }
    }
}

/// One horizon's comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DualityRow {
    pub t: usize,
    /// `P̂(Hit(v) > T)` estimate (COBRA side).
    pub cobra_side: f64,
    /// `P(C ∩ A_T = ∅)` estimate (BIPS side).
    pub bips_side: f64,
    /// Two-proportion z statistic.
    pub z: f64,
}

/// Full report of a duality check.
#[derive(Debug, Clone, PartialEq)]
pub struct DualityReport {
    pub rows: Vec<DualityRow>,
    pub trials: usize,
}

impl DualityReport {
    /// Largest |z| across horizons.
    pub fn max_abs_z(&self) -> f64 {
        self.rows.iter().map(|r| r.z.abs()).fold(0.0, f64::max)
    }

    /// Largest |difference| of the two estimated probabilities.
    pub fn max_abs_diff(&self) -> f64 {
        self.rows
            .iter()
            .map(|r| (r.cobra_side - r.bips_side).abs())
            .fold(0.0, f64::max)
    }

    /// Renders the report as a [`Table`].
    pub fn to_table(&self, id: &str, graph_label: &str) -> Table {
        let mut t = Table::new(
            id,
            format!("Duality check (Thm 1.3) on {graph_label}"),
            &["T", "P(Hit(v)>T) [COBRA]", "P(C∩A_T=∅) [BIPS]", "diff", "z"],
        );
        for r in &self.rows {
            t.push_row(vec![
                r.t.to_string(),
                fmt_f(r.cobra_side),
                fmt_f(r.bips_side),
                fmt_f(r.cobra_side - r.bips_side),
                fmt_f(r.z),
            ]);
        }
        t.note(format!(
            "{} trials/side; max |z| = {} (noise threshold ≈ 3.3 with multiplicity)",
            self.trials,
            fmt_f(self.max_abs_z())
        ));
        t
    }
}

/// Observer for the BIPS side: at each horizon, records whether the
/// current infected set is disjoint from `C` (`A_T` fluctuates, so the
/// flag must be captured in-flight, per round).
struct HorizonDisjoint<'a> {
    horizons: &'a [usize],
    c_set: &'a BitSet,
    flags: Vec<bool>,
    round: usize,
    idx: usize,
}

impl<'a> HorizonDisjoint<'a> {
    fn new(horizons: &'a [usize], c_set: &'a BitSet) -> Self {
        HorizonDisjoint {
            horizons,
            c_set,
            flags: Vec::with_capacity(horizons.len()),
            round: 0,
            idx: 0,
        }
    }

    fn capture(&mut self, p: &dyn ProcessView) {
        while self.idx < self.horizons.len() && self.horizons[self.idx] == self.round {
            self.flags.push(!self.c_set.intersects(p.reached()));
            self.idx += 1;
        }
    }
}

impl Observer for HorizonDisjoint<'_> {
    type Output = Vec<bool>;
    fn on_start(&mut self, p: &dyn ProcessView) {
        self.capture(p);
    }
    fn on_round(&mut self, p: &dyn ProcessView) {
        self.round += 1;
        self.capture(p);
    }
    fn finish(self, _outcome: TrialOutcome, _p: &dyn ProcessView) -> Vec<bool> {
        debug_assert_eq!(self.flags.len(), self.horizons.len());
        self.flags
    }
}

/// Runs the two-sided estimation for source `v` and start set `c`, on
/// any graph backend. Both sides drive the unified [`Engine`] directly
/// with the same trial counts, seeds, and caps the historical
/// `SimSpec`-borrowing path used, so results are unchanged — and the
/// check now runs on implicit topologies too.
pub fn duality_check<T: Topology + Sync>(
    g: &T,
    v: VertexId,
    c: &[VertexId],
    cfg: &DualityConfig,
) -> DualityReport {
    assert!(!c.is_empty(), "duality needs a nonempty start set C");
    assert!((v as usize) < g.n(), "source out of range");
    for &u in c {
        assert!((u as usize) < g.n(), "start vertex {u} out of range");
    }
    assert!(
        cfg.horizons.windows(2).all(|w| w[0] <= w[1]),
        "horizons must be nondecreasing"
    );
    let max_t = *cfg.horizons.iter().max().expect("nonempty horizons");

    // COBRA side: one sample path yields Hit(v), which answers every
    // horizon at once (Hit(v) > T is monotone in T). Censoring at the
    // max_t cap means Hit(v) > max_t ≥ T for every horizon.
    let cobra_spec = ProcessSpec::Cobra {
        branching: cfg.branching,
        laziness: Laziness::None,
    };
    let cobra_engine = Engine::new(cfg.trials, cfg.master_seed, max_t).with_threads(cfg.threads);
    let outcomes = cobra_engine.run_spec_outcomes(g, &cobra_spec, c, StopWhen::Reached(v));
    let cobra = Estimate::from_outcomes(&outcomes, max_t);

    // BIPS side: run to the fixed horizon, snapshotting disjointness.
    let c_set = BitSet::from_indices(g.n(), c);
    let bips_spec = ProcessSpec::Bips {
        branching: cfg.branching,
        laziness: Laziness::None,
        mode: BipsMode::ExactSampling,
    };
    let bips_engine =
        Engine::new(cfg.trials, cfg.master_seed ^ 0xB1B5_D0A1, max_t).with_threads(cfg.threads);
    let disjoint: Vec<Vec<bool>> =
        bips_engine.run_spec(g, &bips_spec, &[v], StopWhen::AtCap, |_| {
            HorizonDisjoint::new(&cfg.horizons, &c_set)
        });

    let n = cfg.trials as f64;
    let rows = cfg
        .horizons
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let cobra_not_hit =
                (cobra.samples.iter().filter(|&&hit| hit > t).count() + cobra.censored) as f64;
            let bips_disjoint = disjoint.iter().filter(|f| f[i]).count() as f64;
            let p1 = cobra_not_hit / n;
            let p2 = bips_disjoint / n;
            let pooled = (cobra_not_hit + bips_disjoint) / (2.0 * n);
            let se = (pooled * (1.0 - pooled) * (2.0 / n)).sqrt();
            let z = if se > 0.0 { (p1 - p2) / se } else { 0.0 };
            DualityRow {
                t,
                cobra_side: p1,
                bips_side: p2,
                z,
            }
        })
        .collect();

    DualityReport {
        rows,
        trials: cfg.trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cobra_graph::{generators, Graph};

    fn check(g: &Graph, v: VertexId, c: &[VertexId], trials: usize, seed: u64) -> DualityReport {
        let cfg = DualityConfig {
            trials,
            master_seed: seed,
            horizons: vec![0, 1, 2, 3, 5],
            ..DualityConfig::default()
        };
        duality_check(g, v, c, &cfg)
    }

    #[test]
    fn horizon_zero_is_deterministic() {
        // T = 0: Hit(v) > 0 ⟺ v ∉ C, and A_0 ∩ C = {v} ∩ C.
        let g = generators::petersen();
        let r = check(&g, 0, &[0], 200, 1);
        assert_eq!(r.rows[0].cobra_side, 0.0);
        assert_eq!(r.rows[0].bips_side, 0.0);
        let r2 = check(&g, 0, &[5], 200, 2);
        assert_eq!(r2.rows[0].cobra_side, 1.0);
        assert_eq!(r2.rows[0].bips_side, 1.0);
    }

    #[test]
    fn duality_holds_on_petersen() {
        let g = generators::petersen();
        let r = check(&g, 3, &[8], 3000, 3);
        assert!(r.max_abs_z() < 4.0, "duality violated: {:?}", r.rows);
    }

    #[test]
    fn duality_holds_on_complete_graph_with_set_start() {
        let g = generators::complete(12);
        let r = check(&g, 0, &[4, 5, 6], 3000, 4);
        assert!(r.max_abs_z() < 4.0, "duality violated: {:?}", r.rows);
    }

    #[test]
    fn duality_holds_on_bipartite_cycle() {
        // Theorem 1.3 needs no spectral condition — even cycles included.
        let g = generators::cycle(8);
        let r = check(&g, 1, &[5], 3000, 5);
        assert!(r.max_abs_z() < 4.0, "duality violated: {:?}", r.rows);
    }

    #[test]
    fn duality_holds_with_fractional_branching() {
        let g = generators::complete(8);
        let cfg = DualityConfig {
            branching: Branching::Expected(0.5),
            trials: 3000,
            horizons: vec![0, 1, 2, 4],
            master_seed: 6,
            threads: 0,
        };
        let r = duality_check(&g, 2, &[6], &cfg);
        assert!(r.max_abs_z() < 4.0, "ρ-duality violated: {:?}", r.rows);
    }

    #[test]
    fn report_table_renders() {
        let g = generators::petersen();
        let r = check(&g, 0, &[9], 200, 7);
        let t = r.to_table("F6", "Petersen");
        assert!(t.render().contains("Duality"));
        assert_eq!(t.rows.len(), 5);
    }

    #[test]
    fn probabilities_monotone_on_cobra_side() {
        let g = generators::cycle(16);
        let r = check(&g, 8, &[0], 1000, 8);
        for w in r.rows.windows(2) {
            assert!(
                w[0].cobra_side >= w[1].cobra_side - 1e-12,
                "P(Hit > T) must be nonincreasing in T"
            );
        }
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn unsorted_horizons_are_rejected() {
        let g = generators::petersen();
        let cfg = DualityConfig {
            horizons: vec![3, 1],
            ..DualityConfig::default()
        };
        duality_check(&g, 0, &[1], &cfg);
    }
}
