//! Terminal plots for the experiment harness.
//!
//! The paper's "figures" are scaling series (cover time vs `n`, vs
//! `1/(1−λ)`, vs `1/ρ`); this crate renders them as ASCII scatter plots
//! with optional logarithmic axes, so `cobra-exps --plot` can show the
//! shape of a claim directly in the terminal next to the table.

pub mod plot;

pub use plot::{Plot, Scale, Series};
