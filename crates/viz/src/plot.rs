//! ASCII scatter plots with linear/log axes and multiple series.

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Linear,
    /// Base-10 logarithmic; every coordinate must be strictly positive.
    Log,
}

impl Scale {
    fn transform(&self, v: f64) -> f64 {
        match self {
            Scale::Linear => v,
            Scale::Log => {
                assert!(v > 0.0, "log-scaled coordinate must be positive, got {v}");
                v.log10()
            }
        }
    }
}

/// One plotted series.
#[derive(Debug, Clone)]
pub struct Series {
    pub label: String,
    pub marker: char,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series; finite coordinates required.
    pub fn new(label: impl Into<String>, marker: char, points: Vec<(f64, f64)>) -> Series {
        assert!(
            points.iter().all(|&(x, y)| x.is_finite() && y.is_finite()),
            "series contains non-finite points"
        );
        Series {
            label: label.into(),
            marker,
            points,
        }
    }
}

/// A plot under construction.
#[derive(Debug, Clone)]
pub struct Plot {
    title: String,
    x_label: String,
    y_label: String,
    x_scale: Scale,
    y_scale: Scale,
    width: usize,
    height: usize,
    series: Vec<Series>,
}

impl Plot {
    /// Creates an empty plot with a default 64×20 canvas.
    pub fn new(title: impl Into<String>) -> Plot {
        Plot {
            title: title.into(),
            x_label: "x".into(),
            y_label: "y".into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            width: 64,
            height: 20,
            series: Vec::new(),
        }
    }

    /// Axis labels.
    pub fn labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Plot {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Axis scales.
    pub fn scales(mut self, x: Scale, y: Scale) -> Plot {
        self.x_scale = x;
        self.y_scale = y;
        self
    }

    /// Canvas size in characters (minimums 16×8 enforced).
    pub fn size(mut self, width: usize, height: usize) -> Plot {
        self.width = width.max(16);
        self.height = height.max(8);
        self
    }

    /// Adds a series.
    pub fn series(mut self, s: Series) -> Plot {
        self.series.push(s);
        self
    }

    /// Renders the plot. Panics if no series has any points.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64, char)> = self
            .series
            .iter()
            .flat_map(|s| {
                s.points.iter().map(move |&(x, y)| {
                    (
                        self.x_scale.transform(x),
                        self.y_scale.transform(y),
                        s.marker,
                    )
                })
            })
            .collect();
        assert!(!pts.is_empty(), "cannot render an empty plot");
        let (mut x_lo, mut x_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_lo, mut y_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y, _) in &pts {
            x_lo = x_lo.min(x);
            x_hi = x_hi.max(x);
            y_lo = y_lo.min(y);
            y_hi = y_hi.max(y);
        }
        // Degenerate ranges get padding so everything lands mid-canvas.
        if x_hi - x_lo < 1e-12 {
            x_lo -= 0.5;
            x_hi += 0.5;
        }
        if y_hi - y_lo < 1e-12 {
            y_lo -= 0.5;
            y_hi += 0.5;
        }
        let mut canvas = vec![vec![' '; self.width]; self.height];
        for &(x, y, marker) in &pts {
            let cx = ((x - x_lo) / (x_hi - x_lo) * (self.width - 1) as f64).round() as usize;
            let cy = ((y - y_lo) / (y_hi - y_lo) * (self.height - 1) as f64).round() as usize;
            // Canvas row 0 is the top.
            canvas[self.height - 1 - cy][cx] = marker;
        }
        let fmt_tick = |scale: Scale, v: f64| -> String {
            let raw = match scale {
                Scale::Linear => v,
                Scale::Log => 10f64.powf(v),
            };
            if raw.abs() >= 1000.0 {
                format!("{raw:.0}")
            } else {
                format!("{raw:.3}")
            }
        };
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.title));
        out.push_str(&format!(
            "y: {}{}\n",
            self.y_label,
            if self.y_scale == Scale::Log {
                " (log)"
            } else {
                ""
            }
        ));
        for (i, row) in canvas.iter().enumerate() {
            let tick = if i == 0 {
                fmt_tick(self.y_scale, y_hi)
            } else if i == self.height - 1 {
                fmt_tick(self.y_scale, y_lo)
            } else {
                String::new()
            };
            out.push_str(&format!(
                "{tick:>10} |{}|\n",
                row.iter().collect::<String>()
            ));
        }
        out.push_str(&format!("{:>10} +{}+\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>10}  {:<w$}{}\n",
            "",
            fmt_tick(self.x_scale, x_lo),
            fmt_tick(self.x_scale, x_hi),
            w = self
                .width
                .saturating_sub(fmt_tick(self.x_scale, x_hi).len())
        ));
        out.push_str(&format!(
            "x: {}{}\n",
            self.x_label,
            if self.x_scale == Scale::Log {
                " (log)"
            } else {
                ""
            }
        ));
        for s in &self.series {
            out.push_str(&format!("  {} {}\n", s.marker, s.label));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_series() -> Series {
        Series::new(
            "line",
            '*',
            (1..=10).map(|i| (i as f64, 2.0 * i as f64)).collect(),
        )
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let p = Plot::new("demo").labels("n", "cover").series(line_series());
        let s = p.render();
        assert!(s.contains("demo"));
        assert!(s.contains("x: n"));
        assert!(s.contains("y: cover"));
        assert!(s.contains("* line"));
        assert!(s.contains('*'));
    }

    #[test]
    fn monotone_series_renders_monotone() {
        let p = Plot::new("mono").series(line_series()).size(40, 10);
        let s = p.render();
        // Column index of '*' must be non-decreasing going down the rows
        // reversed (the line has positive slope).
        let cols: Vec<usize> = s
            .lines()
            .filter(|l| l.contains('|') && l.contains('*'))
            .map(|l| l.find('*').unwrap())
            .collect();
        assert!(!cols.is_empty());
        for w in cols.windows(2) {
            assert!(
                w[1] <= w[0],
                "positive-slope line rendered non-monotone: {cols:?}"
            );
        }
    }

    #[test]
    fn log_scale_spreads_geometric_series() {
        let pts: Vec<(f64, f64)> = (0..8).map(|i| (2f64.powi(i), 1.0)).collect();
        let p = Plot::new("title")
            .scales(Scale::Log, Scale::Linear)
            .series(Series::new("gemetric", 'o', pts))
            .size(29, 8);
        let s = p.render();
        // Under log-x a geometric sequence is equally spaced: marker
        // columns should be (roughly) an arithmetic progression. Only
        // canvas rows (containing '|') qualify.
        let row = s
            .lines()
            .find(|l| l.contains('|') && l.contains('o'))
            .unwrap();
        let cols: Vec<usize> = row
            .char_indices()
            .filter(|&(_, c)| c == 'o')
            .map(|(i, _)| i)
            .collect();
        assert_eq!(cols.len(), 8, "markers collided under log scaling: {row}");
        let diffs: Vec<isize> = cols
            .windows(2)
            .map(|w| w[1] as isize - w[0] as isize)
            .collect();
        let (dmin, dmax) = (diffs.iter().min().unwrap(), diffs.iter().max().unwrap());
        assert!(dmax - dmin <= 1, "uneven spacing {diffs:?}");
    }

    #[test]
    fn multiple_series_distinct_markers() {
        let p = Plot::new("two")
            .series(Series::new("a", 'a', vec![(0.0, 0.0), (1.0, 1.0)]))
            .series(Series::new("b", 'b', vec![(0.0, 1.0), (1.0, 0.0)]));
        let s = p.render();
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn constant_series_renders_mid_canvas() {
        let p = Plot::new("flat").series(Series::new("c", '#', vec![(1.0, 5.0), (2.0, 5.0)]));
        let s = p.render();
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_scale_rejects_nonpositive() {
        Plot::new("bad")
            .scales(Scale::Linear, Scale::Log)
            .series(Series::new("z", 'z', vec![(1.0, 0.0)]))
            .render();
    }

    #[test]
    #[should_panic(expected = "empty plot")]
    fn empty_plot_rejected() {
        Plot::new("empty").render();
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_points_rejected() {
        Series::new("nan", 'n', vec![(f64::NAN, 1.0)]);
    }
}
